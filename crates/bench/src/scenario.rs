//! Declarative scenario matrix: parse a TOML/JSON spec describing a grid
//! of `dataset × solver × precision × kernel × assign × executor ×
//! distance × z × fault` cells, run every cell through the existing
//! drivers, and emit one machine-readable JSON report per run.
//!
//! The report carries, per cell, the certified covering radius (and the
//! with-outliers kept radius when `z > 0`), the simulated and wall times,
//! the MapReduce round count, the surviving coverage fraction, and an
//! FNV-1a determinism digest of the selected center set.  Deterministic
//! metrics — radius, digest, rounds, coverage — are bit-reproducible per
//! `(seed, precision, kernel, assign)`; the timing columns are
//! measurements and are only gated when an explicit tolerance is given.
//!
//! [`diff_reports`] compares two reports cell-by-cell against per-metric
//! tolerances; the `report_diff` binary wraps it as the CI regression
//! gate (exit status 1 on any regression).
//!
//! # Spec format (TOML subset)
//!
//! ```toml
//! name = "smoke"
//! seed = 42
//! k = 8
//! machines = 8        # optional, default 8
//! threads = 2         # optional worker budget for the threaded executor
//! epsilon = 0.1       # optional, EIM
//! phi = 8.0           # optional, EIM
//! max_attempts = 64   # optional, fault retry budget
//!
//! [grid]
//! solvers = ["gon", "mrg"]          # gon | hs | mrg | eim
//! precisions = ["f64", "f32"]
//! kernels = ["scalar"]              # auto | scalar | portable | avx2
//! assigns = ["auto"]                # auto | dense | grid
//! executors = ["simulated", "threads"]
//! distances = ["euclidean"]         # euclidean | manhattan
//! outliers = [0]                    # z values for the robust objective
//! faults = ["none", "seed=1234"]    # none | seed=S | seed=S+degrade
//!
//! [[dataset]]
//! family = "gau"     # unif | gau | unb | poker | kdd | exp | dup |
//!                    # gau-hd | gau+out
//! n = 2000
//! k_prime = 8        # families with planted clusters
//! # distinct = 16    # dup
//! # dim = 64         # gau-hd
//! # planted = 40     # gau+out: planted outlier count
//! ```
//!
//! The same structure is accepted as JSON (`{"name": …, "grid": {…},
//! "datasets": [{…}]}`); a leading `{` selects the JSON parser.
//!
//! Cells pairing a sequential solver (gon/hs) with an active fault spec
//! are skipped at expansion — fault injection targets the MapReduce
//! rounds — so a fault axis multiplies only the parallel solvers.
//!
//! An optional `[ingest]` table additionally replays every dataset as a
//! checkpointed batch stream through the durable serve loop
//! (`kcenter_serve`), one cell per `batches × faults × precisions`
//! combination.  Each ingest cell also re-runs itself with an injected
//! mid-checkpoint-write crash and resumes from the surviving checkpoint;
//! the resumed state must be bit-identical to the uninterrupted twin or
//! the cell errors out, so a committed ingest baseline gates crash
//! consistency as well as determinism:
//!
//! ```toml
//! [ingest]
//! batches = [3, 5]       # batch-count axis
//! coreset_size = 16      # representatives per batch summary
//! budget = 48            # re-compression threshold (default 4×size)
//! kernel = "scalar"      # pin for committed baselines, like the grid
//! faults = ["none", "seed=9"]
//! ```

use kcenter_core::outliers::evaluate_with_outliers;
use kcenter_core::prelude::*;
use kcenter_data::DatasetSpec;
use kcenter_mapreduce::{
    install_thread_budget, Executor, ExecutorChoice, FaultConfig, FaultPlan, FaultPolicy,
};
use kcenter_metric::grid::{self, AssignChoice, AssignMode};
use kcenter_metric::kernel::simd;
use kcenter_metric::{
    Distance, Euclidean, KernelBackend, KernelChoice, Manhattan, PointId, Precision, Scalar,
    VecSpace,
};
use kcenter_serve::{IngestConfig, IngestError, Ingestor, KillPoint, KillStage, StreamConfig};
use std::fmt;
use std::fmt::Write as _;
use std::time::Instant;

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// A named scenario-harness error: where the spec/report text went wrong,
/// or which grid value is not runnable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// The TOML-subset parser rejected a line.
    Syntax {
        /// 1-based line number in the spec text.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// The JSON parser rejected the text.
    Json {
        /// Byte offset of the failure.
        offset: usize,
        /// What was wrong.
        message: String,
    },
    /// A required key is absent.
    Missing {
        /// The missing key (e.g. `"k"`, `"dataset.family"`).
        what: String,
    },
    /// A present value is not usable.
    Invalid {
        /// Which field.
        what: String,
        /// The rejected value, rendered.
        value: String,
        /// What would have been accepted.
        expected: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Syntax { line, message } => {
                write!(f, "spec syntax error at line {line}: {message}")
            }
            ScenarioError::Json { offset, message } => {
                write!(f, "JSON error at byte {offset}: {message}")
            }
            ScenarioError::Missing { what } => write!(f, "missing required key {what:?}"),
            ScenarioError::Invalid {
                what,
                value,
                expected,
            } => write!(f, "invalid {what} {value:?} (expected {expected})"),
        }
    }
}

impl std::error::Error for ScenarioError {}

fn invalid(what: &str, value: impl fmt::Display, expected: &str) -> ScenarioError {
    ScenarioError::Invalid {
        what: what.to_string(),
        value: value.to_string(),
        expected: expected.to_string(),
    }
}

fn missing(what: &str) -> ScenarioError {
    ScenarioError::Missing {
        what: what.to_string(),
    }
}

// ---------------------------------------------------------------------------
// A tiny JSON-shaped value model, produced by both the TOML-subset parser
// and the JSON parser, interpreted once.
// ---------------------------------------------------------------------------

/// The value model both spec syntaxes parse into.  Numbers are carried as
/// `f64`; Rust's shortest-representation `Display` makes emit→parse
/// round-trips bit-exact for every finite value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object / table, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_usize(&self) -> Option<usize> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// JSON parsing (reports and JSON specs) — hand-rolled: the vendored serde
// is a no-op marker stand-in and there is no serde_json in the tree.
// ---------------------------------------------------------------------------

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn err(&self, message: impl Into<String>) -> ScenarioError {
        ScenarioError::Json {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), ScenarioError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", c as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ScenarioError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Value::Bool(true)),
            Some(b'f') => self.parse_lit("false", Value::Bool(false)),
            Some(b'n') => self.parse_lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a value")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Value) -> Result<Value, ScenarioError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {lit:?}")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, ScenarioError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err(format!("malformed number {text:?}")))
    }

    fn parse_string(&mut self) -> Result<String, ScenarioError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.err("non-ASCII \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.err("malformed \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(self.err(format!("unknown escape \\{}", other as char)))
                        }
                    }
                }
                Some(_) => {
                    // Copy the raw UTF-8 byte run up to the next quote/escape.
                    let start = self.pos;
                    while !matches!(self.peek(), None | Some(b'"') | Some(b'\\')) {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string"))?,
                    );
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, ScenarioError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, ScenarioError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a JSON document into the [`Value`] model.
pub fn parse_json(text: &str) -> Result<Value, ScenarioError> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the document"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// TOML-subset parsing (scenario specs)
// ---------------------------------------------------------------------------

/// Parses the TOML subset used by scenario specs into the same [`Value`]
/// model as JSON: top-level `key = value` pairs, `[section]` tables,
/// `[[table]]` arrays-of-tables, with string / number / boolean / flat
/// array values.  Dotted keys, multi-line arrays and inline tables are
/// out of scope and rejected with a line-numbered error.
pub fn parse_toml(text: &str) -> Result<Value, ScenarioError> {
    let mut root: Vec<(String, Value)> = Vec::new();
    // Index into `root` of the object currently receiving `key = value`
    // lines; None means the root itself.
    let mut target: Option<usize> = None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        let syntax = |message: String| ScenarioError::Syntax {
            line: lineno,
            message,
        };
        if let Some(name) = line.strip_prefix("[[").and_then(|s| s.strip_suffix("]]")) {
            let name = name.trim().to_string();
            if name.is_empty() || name.contains('.') {
                return Err(syntax(format!("bad array-of-tables header {line:?}")));
            }
            // Append a fresh element to the named array, creating it on
            // first sight.
            let slot = match root.iter().position(|(k, _)| *k == name) {
                Some(i) => i,
                None => {
                    root.push((name.clone(), Value::Array(Vec::new())));
                    root.len() - 1
                }
            };
            match &mut root[slot].1 {
                Value::Array(items) => items.push(Value::Object(Vec::new())),
                _ => return Err(syntax(format!("{name:?} is both a table and an array"))),
            }
            target = Some(slot);
        } else if let Some(name) = line.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let name = name.trim().to_string();
            if name.is_empty() || name.contains('.') {
                return Err(syntax(format!("bad table header {line:?}")));
            }
            if root.iter().any(|(k, _)| *k == name) {
                return Err(syntax(format!("duplicate table {name:?}")));
            }
            root.push((name, Value::Object(Vec::new())));
            let slot = root.len() - 1;
            target = Some(slot);
        } else if let Some((key, value)) = line.split_once('=') {
            let key = key.trim().to_string();
            if key.is_empty() {
                return Err(syntax("empty key".into()));
            }
            let value = parse_toml_value(value.trim(), lineno)?;
            let entries: &mut Vec<(String, Value)> = match target {
                None => &mut root,
                Some(slot) => match &mut root[slot].1 {
                    Value::Object(entries) => entries,
                    Value::Array(items) => match items.last_mut() {
                        Some(Value::Object(entries)) => entries,
                        _ => unreachable!("array-of-tables elements are objects"),
                    },
                    _ => unreachable!("section targets are tables"),
                },
            };
            if entries.iter().any(|(k, _)| *k == key) {
                return Err(syntax(format!("duplicate key {key:?}")));
            }
            entries.push((key, value));
        } else {
            return Err(syntax(format!(
                "expected `key = value` or a [section] header, found {line:?}"
            )));
        }
    }
    Ok(Value::Object(root))
}

/// Cuts a trailing `#` comment, respecting quoted strings.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_toml_value(text: &str, lineno: usize) -> Result<Value, ScenarioError> {
    let syntax = |message: String| ScenarioError::Syntax {
        line: lineno,
        message,
    };
    if let Some(inner) = text.strip_prefix('[') {
        let inner = inner
            .strip_suffix(']')
            .ok_or_else(|| syntax(format!("unterminated array {text:?} (single-line only)")))?;
        let mut items = Vec::new();
        for part in split_toml_array(inner) {
            let part = part.trim();
            if !part.is_empty() {
                items.push(parse_toml_value(part, lineno)?);
            }
        }
        return Ok(Value::Array(items));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let inner = inner
            .strip_suffix('"')
            .ok_or_else(|| syntax(format!("unterminated string {text:?}")))?;
        if inner.contains('"') || inner.contains('\\') {
            return Err(syntax(format!(
                "escapes are not supported in strings: {text:?}"
            )));
        }
        return Ok(Value::Str(inner.to_string()));
    }
    match text {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    // TOML permits underscores in numbers; strip before parsing.
    let numeric = text.replace('_', "");
    numeric
        .parse::<f64>()
        .map(Value::Num)
        .map_err(|_| syntax(format!("unrecognised value {text:?}")))
}

/// Splits the body of a single-line array on commas outside quotes.
fn split_toml_array(inner: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    for c in inner.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            ',' if !in_string => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    parts.push(current);
    parts
}

// ---------------------------------------------------------------------------
// Spec model
// ---------------------------------------------------------------------------

/// Which solver a cell runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverKind {
    /// Gonzalez's sequential 2-approximation.
    Gon,
    /// Hochbaum–Shmoys' sequential 2-approximation.
    Hs,
    /// The paper's MapReduce Gonzalez.
    Mrg,
    /// The generalised iterative-sampling EIM.
    Eim,
}

impl SolverKind {
    /// Canonical lowercase name, as used in spec files and cell ids.
    pub fn name(self) -> &'static str {
        match self {
            SolverKind::Gon => "gon",
            SolverKind::Hs => "hs",
            SolverKind::Mrg => "mrg",
            SolverKind::Eim => "eim",
        }
    }

    /// Parses a solver name (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "gon" | "gonzalez" => Some(SolverKind::Gon),
            "hs" | "hochbaum-shmoys" => Some(SolverKind::Hs),
            "mrg" => Some(SolverKind::Mrg),
            "eim" => Some(SolverKind::Eim),
            _ => None,
        }
    }

    /// Whether the solver runs MapReduce rounds (and so sees executors and
    /// injected faults).
    pub fn is_parallel(self) -> bool {
        matches!(self, SolverKind::Mrg | SolverKind::Eim)
    }
}

/// Which distance the cell's space uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DistanceKind {
    /// The default L2 metric.
    Euclidean,
    /// The L1 metric (the non-Euclidean arm).
    Manhattan,
}

impl DistanceKind {
    /// Canonical lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            DistanceKind::Euclidean => "euclidean",
            DistanceKind::Manhattan => "manhattan",
        }
    }

    /// Parses a distance name (case-insensitive; `l1`/`l2` accepted).
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "euclidean" | "l2" => Some(DistanceKind::Euclidean),
            "manhattan" | "l1" => Some(DistanceKind::Manhattan),
            _ => None,
        }
    }
}

/// One fault-axis value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSpec {
    /// Fault-free run.
    None,
    /// Deterministically seeded fault injection; with the spec's retry
    /// budget every shard eventually succeeds and results stay
    /// bit-identical to the fault-free run unless `degrade` is set.
    Seeded {
        /// The fault-schedule seed.
        seed: u64,
        /// Whether exhausted shards are dropped (certified-degradation
        /// mode) instead of failing the run.
        degrade: bool,
    },
}

impl FaultSpec {
    /// Canonical label (`none` | `seed=S` | `seed=S+degrade`).
    pub fn label(self) -> String {
        match self {
            FaultSpec::None => "none".to_string(),
            FaultSpec::Seeded { seed, degrade } => {
                if degrade {
                    format!("seed={seed}+degrade")
                } else {
                    format!("seed={seed}")
                }
            }
        }
    }

    /// Parses a fault label.
    pub fn parse(text: &str) -> Option<Self> {
        let text = text.trim();
        if text.eq_ignore_ascii_case("none") {
            return Some(FaultSpec::None);
        }
        let (body, degrade) = match text.strip_suffix("+degrade") {
            Some(body) => (body, true),
            None => (text, false),
        };
        let seed = body.strip_prefix("seed=")?.parse().ok()?;
        Some(FaultSpec::Seeded { seed, degrade })
    }

    fn is_active(self) -> bool {
        !matches!(self, FaultSpec::None)
    }
}

/// A parsed scenario: shared run parameters, the grid axes, and the
/// dataset list.  [`ScenarioSpec::cells`] expands the cross product.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (used in the report and default output file name).
    pub name: String,
    /// Seed shared by data generation and algorithm randomness.
    pub seed: u64,
    /// Number of centers per cell.
    pub k: usize,
    /// Simulated machines for the parallel solvers.
    pub machines: usize,
    /// Worker budget for the threaded executor.
    pub threads: usize,
    /// EIM's ε.
    pub epsilon: f64,
    /// EIM's φ.
    pub phi: f64,
    /// Retry budget for fault-seeded cells.
    pub max_attempts: usize,
    /// Solver axis.
    pub solvers: Vec<SolverKind>,
    /// Storage-precision axis.
    pub precisions: Vec<Precision>,
    /// Kernel-backend axis.
    pub kernels: Vec<KernelChoice>,
    /// Assignment-arm axis.
    pub assigns: Vec<AssignChoice>,
    /// Executor axis.
    pub executors: Vec<ExecutorChoice>,
    /// Distance axis.
    pub distances: Vec<DistanceKind>,
    /// With-outliers `z` axis (0 = plain objective).
    pub outliers: Vec<usize>,
    /// Fault axis.
    pub faults: Vec<FaultSpec>,
    /// The datasets, in spec order.
    pub datasets: Vec<DatasetSpec>,
    /// Optional streaming-ingest axes (`[ingest]` table); `None` runs no
    /// ingest cells.
    pub ingest: Option<IngestAxes>,
}

/// The `[ingest]` table: every dataset is additionally replayed as a
/// checkpointed batch stream, once per `batches × faults × precisions`
/// combination.  Each ingest cell folds the stream through the durable
/// serve loop, then *re-runs itself with an injected mid-checkpoint crash
/// and resumes* — the resumed state must be bit-identical to the
/// uninterrupted twin or the cell fails, so the committed baseline gates
/// crash consistency, not just the final radius.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestAxes {
    /// Batch-count axis (each ≥ 1).
    pub batches: Vec<usize>,
    /// Representatives per batch summary.
    pub coreset_size: usize,
    /// Re-compression budget of the accumulated coreset.
    pub budget: usize,
    /// Kernel backend for the ingest cells (pin `"scalar"` in committed
    /// baselines, like the grid axis).
    pub kernel: KernelChoice,
    /// Assignment arm for the ingest cells.
    pub assign: AssignChoice,
    /// Fault axis for the batch builds (same labels as the grid axis).
    pub faults: Vec<FaultSpec>,
}

/// One fully specified ingest cell.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestCellConfig {
    /// Index of the dataset in the spec's list.
    pub dataset_index: usize,
    /// The dataset, replayed as a stream.
    pub dataset: DatasetSpec,
    /// Storage precision.
    pub precision: Precision,
    /// Number of contiguous batches.
    pub batches: usize,
    /// Representatives per batch summary.
    pub coreset_size: usize,
    /// Re-compression budget.
    pub budget: usize,
    /// Kernel backend request.
    pub kernel: KernelChoice,
    /// Assignment arm request.
    pub assign: AssignChoice,
    /// Fault-injection arm.
    pub fault: FaultSpec,
}

impl IngestCellConfig {
    /// The cell's stable identity.  The `ingest/` prefix keeps the ingest
    /// namespace disjoint from the solve-cell ids, so adding an `[ingest]`
    /// table never perturbs an existing committed baseline.
    pub fn id(&self) -> String {
        format!(
            "ingest/d{}-{}-n{}/b{}/t{}/g{}/{}/{}/{}/{}",
            self.dataset_index,
            self.dataset.family().to_ascii_lowercase().replace(' ', "-"),
            self.dataset.n(),
            self.batches,
            self.coreset_size,
            self.budget,
            self.precision.name(),
            kernel_label(self.kernel),
            assign_label(self.assign),
            self.fault.label(),
        )
    }
}

/// One fully specified grid cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CellConfig {
    /// Index of the dataset in the spec's list.
    pub dataset_index: usize,
    /// The dataset.
    pub dataset: DatasetSpec,
    /// The solver.
    pub solver: SolverKind,
    /// Storage precision.
    pub precision: Precision,
    /// Kernel backend request.
    pub kernel: KernelChoice,
    /// Assignment arm request.
    pub assign: AssignChoice,
    /// Executor request.
    pub executor: ExecutorChoice,
    /// Distance.
    pub distance: DistanceKind,
    /// With-outliers budget (0 = plain).
    pub z: usize,
    /// Fault-injection arm.
    pub fault: FaultSpec,
}

/// Canonical name of a kernel request.
fn kernel_label(choice: KernelChoice) -> &'static str {
    match choice {
        KernelChoice::Auto => "auto",
        KernelChoice::Fixed(b) => b.name(),
    }
}

/// Canonical name of an assignment-arm request.
fn assign_label(choice: AssignChoice) -> &'static str {
    match choice {
        AssignChoice::Auto => "auto",
        AssignChoice::Fixed(AssignMode::Dense) => "dense",
        AssignChoice::Fixed(AssignMode::Grid) => "grid",
    }
}

/// Canonical name of an executor request.
fn executor_label(choice: ExecutorChoice) -> &'static str {
    match choice {
        ExecutorChoice::Simulated => "simulated",
        ExecutorChoice::Threads => "threads",
    }
}

impl CellConfig {
    /// The cell's stable identity: every axis value, `/`-joined.  Reports
    /// are diffed by this key.
    pub fn id(&self) -> String {
        format!(
            "d{}-{}-n{}/{}/{}/{}/{}/{}/{}/z{}/{}",
            self.dataset_index,
            self.dataset.family().to_ascii_lowercase().replace(' ', "-"),
            self.dataset.n(),
            self.solver.name(),
            self.precision.name(),
            kernel_label(self.kernel),
            assign_label(self.assign),
            executor_label(self.executor),
            self.distance.name(),
            self.z,
            self.fault.label(),
        )
    }
}

impl ScenarioSpec {
    /// Parses a scenario spec, auto-detecting JSON (leading `{`) vs the
    /// TOML subset.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let doc = if text.trim_start().starts_with('{') {
            parse_json(text)?
        } else {
            parse_toml(text)?
        };
        Self::from_value(&doc)
    }

    /// Interprets the parsed document.
    fn from_value(doc: &Value) -> Result<Self, ScenarioError> {
        let name = doc
            .get("name")
            .ok_or_else(|| missing("name"))?
            .as_str()
            .ok_or_else(|| invalid("name", "<non-string>", "a string"))?
            .to_string();
        let k = doc
            .get("k")
            .ok_or_else(|| missing("k"))?
            .as_usize()
            .ok_or_else(|| invalid("k", "<non-integer>", "a positive integer"))?;
        if k == 0 {
            return Err(invalid("k", 0, "a positive integer"));
        }
        let seed = opt_u64(doc, "seed", 42)?;
        let machines = opt_usize(doc, "machines", 8)?;
        let threads = opt_usize(doc, "threads", 2)?.max(1);
        let epsilon = opt_f64(doc, "epsilon", 0.1)?;
        let phi = opt_f64(doc, "phi", 8.0)?;
        let max_attempts = opt_usize(doc, "max_attempts", 64)?.max(1);

        let grid = doc
            .get("grid")
            .unwrap_or(&Value::Object(Vec::new()))
            .clone();
        let solvers = axis(&grid, "solvers", &["gon"], |s| {
            SolverKind::parse(s).ok_or_else(|| invalid("solver", s, "gon | hs | mrg | eim"))
        })?;
        let precisions = axis(&grid, "precisions", &["f64"], |s| {
            Precision::parse(s).ok_or_else(|| invalid("precision", s, "f32 | f64"))
        })?;
        let kernels = axis(&grid, "kernels", &["auto"], |s| {
            KernelChoice::parse(s).map_err(|e| invalid("kernel", s, &e.to_string()))
        })?;
        let assigns = axis(&grid, "assigns", &["auto"], |s| {
            AssignChoice::parse(s).map_err(|e| invalid("assign", s, &e.to_string()))
        })?;
        let executors = axis(&grid, "executors", &["simulated"], |s| {
            ExecutorChoice::parse(s).map_err(|e| invalid("executor", s, &e.to_string()))
        })?;
        let distances = axis(&grid, "distances", &["euclidean"], |s| {
            DistanceKind::parse(s).ok_or_else(|| invalid("distance", s, "euclidean | manhattan"))
        })?;
        let faults = axis(&grid, "faults", &["none"], |s| {
            FaultSpec::parse(s).ok_or_else(|| invalid("fault", s, "none | seed=S | seed=S+degrade"))
        })?;
        let outliers = match grid.get("outliers") {
            None => vec![0],
            Some(v) => {
                let items = v
                    .as_array()
                    .ok_or_else(|| invalid("grid.outliers", "<non-array>", "an integer array"))?;
                let mut zs = Vec::new();
                for item in items {
                    zs.push(item.as_usize().ok_or_else(|| {
                        invalid(
                            "grid.outliers entry",
                            "<non-integer>",
                            "a non-negative integer",
                        )
                    })?);
                }
                if zs.is_empty() {
                    return Err(invalid("grid.outliers", "[]", "at least one z value"));
                }
                zs
            }
        };

        let dataset_values = doc
            .get("datasets")
            .or_else(|| doc.get("dataset"))
            .ok_or_else(|| missing("dataset"))?
            .as_array()
            .ok_or_else(|| invalid("datasets", "<non-array>", "an array of dataset tables"))?;
        if dataset_values.is_empty() {
            return Err(missing("dataset"));
        }
        let datasets = dataset_values
            .iter()
            .map(parse_dataset)
            .collect::<Result<Vec<_>, _>>()?;

        let ingest = match doc.get("ingest") {
            None => None,
            Some(v) => Some(parse_ingest_axes(v)?),
        };

        Ok(ScenarioSpec {
            name,
            seed,
            k,
            machines,
            threads,
            epsilon,
            phi,
            max_attempts,
            solvers,
            precisions,
            kernels,
            assigns,
            executors,
            distances,
            outliers,
            faults,
            datasets,
            ingest,
        })
    }

    /// Returns a copy with every dataset scaled to `round(n · factor)`
    /// points (CI runs the committed scenarios at reduced scale through
    /// this; the grid axes are untouched).
    pub fn scaled(&self, factor: f64) -> ScenarioSpec {
        let mut scaled = self.clone();
        scaled.datasets = self.datasets.iter().map(|d| d.scaled(factor)).collect();
        scaled
    }

    /// Expands the `[ingest]` table into runnable ingest cells (empty when
    /// the spec has no ingest table): `dataset × precision × batches ×
    /// fault`, in deterministic order, appended after the solve cells by
    /// [`run_scenario`].
    pub fn ingest_cells(&self) -> Vec<IngestCellConfig> {
        let Some(axes) = &self.ingest else {
            return Vec::new();
        };
        let mut cells = Vec::new();
        for (dataset_index, dataset) in self.datasets.iter().enumerate() {
            for &precision in &self.precisions {
                for &batches in &axes.batches {
                    for &fault in &axes.faults {
                        cells.push(IngestCellConfig {
                            dataset_index,
                            dataset: dataset.clone(),
                            precision,
                            batches,
                            coreset_size: axes.coreset_size,
                            budget: axes.budget,
                            kernel: axes.kernel,
                            assign: axes.assign,
                            fault,
                        });
                    }
                }
            }
        }
        cells
    }

    /// Expands the grid into runnable cells, in deterministic order.
    /// Sequential solvers are not paired with active fault arms (fault
    /// injection targets the MapReduce rounds).
    pub fn cells(&self) -> Vec<CellConfig> {
        let mut cells = Vec::new();
        for (dataset_index, dataset) in self.datasets.iter().enumerate() {
            for &solver in &self.solvers {
                for &precision in &self.precisions {
                    for &kernel in &self.kernels {
                        for &assign in &self.assigns {
                            for &executor in &self.executors {
                                for &distance in &self.distances {
                                    for &z in &self.outliers {
                                        for &fault in &self.faults {
                                            if fault.is_active() && !solver.is_parallel() {
                                                continue;
                                            }
                                            cells.push(CellConfig {
                                                dataset_index,
                                                dataset: dataset.clone(),
                                                solver,
                                                precision,
                                                kernel,
                                                assign,
                                                executor,
                                                distance,
                                                z,
                                                fault,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        cells
    }
}

fn opt_u64(doc: &Value, key: &str, default: u64) -> Result<u64, ScenarioError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| invalid(key, "<non-integer>", "a non-negative integer")),
    }
}

fn opt_usize(doc: &Value, key: &str, default: usize) -> Result<usize, ScenarioError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_usize()
            .ok_or_else(|| invalid(key, "<non-integer>", "a non-negative integer")),
    }
}

fn opt_f64(doc: &Value, key: &str, default: f64) -> Result<f64, ScenarioError> {
    match doc.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| invalid(key, "<non-number>", "a number")),
    }
}

/// Reads a grid axis: an array of names, each parsed by `parse`; absent
/// axes fall back to `defaults`.
fn axis<T>(
    grid: &Value,
    key: &str,
    defaults: &[&str],
    parse: impl Fn(&str) -> Result<T, ScenarioError>,
) -> Result<Vec<T>, ScenarioError> {
    let named: Vec<String> = match grid.get(key) {
        None => defaults.iter().map(|s| s.to_string()).collect(),
        Some(v) => {
            let items = v
                .as_array()
                .ok_or_else(|| invalid(&format!("grid.{key}"), "<non-array>", "a string array"))?;
            let mut names = Vec::new();
            for item in items {
                names.push(
                    item.as_str()
                        .ok_or_else(|| {
                            invalid(&format!("grid.{key} entry"), "<non-string>", "a string")
                        })?
                        .to_string(),
                );
            }
            names
        }
    };
    if named.is_empty() {
        return Err(invalid(
            &format!("grid.{key}"),
            "[]",
            "at least one axis value",
        ));
    }
    named.iter().map(|s| parse(s)).collect()
}

/// Interprets the `[ingest]` table.
fn parse_ingest_axes(value: &Value) -> Result<IngestAxes, ScenarioError> {
    let batch_values = value
        .get("batches")
        .ok_or_else(|| missing("ingest.batches"))?
        .as_array()
        .ok_or_else(|| invalid("ingest.batches", "<non-array>", "an integer array"))?;
    let mut batches = Vec::new();
    for item in batch_values {
        let b = item
            .as_usize()
            .filter(|&b| b >= 1)
            .ok_or_else(|| invalid("ingest.batches entry", "<non-positive>", "an integer ≥ 1"))?;
        batches.push(b);
    }
    if batches.is_empty() {
        return Err(invalid("ingest.batches", "[]", "at least one batch count"));
    }
    let coreset_size = opt_usize(value, "coreset_size", 32)?.max(1);
    let budget = opt_usize(value, "budget", 4 * coreset_size)?.max(1);
    let kernel = match value.get("kernel") {
        None => KernelChoice::Auto,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| invalid("ingest.kernel", "<non-string>", "a kernel name"))?;
            KernelChoice::parse(name).map_err(|e| invalid("ingest.kernel", name, &e.to_string()))?
        }
    };
    let assign = match value.get("assign") {
        None => AssignChoice::Auto,
        Some(v) => {
            let name = v
                .as_str()
                .ok_or_else(|| invalid("ingest.assign", "<non-string>", "an assign-arm name"))?;
            AssignChoice::parse(name).map_err(|e| invalid("ingest.assign", name, &e.to_string()))?
        }
    };
    let faults = axis(value, "faults", &["none"], |s| {
        FaultSpec::parse(s).ok_or_else(|| invalid("fault", s, "none | seed=S | seed=S+degrade"))
    })?;
    Ok(IngestAxes {
        batches,
        coreset_size,
        budget,
        kernel,
        assign,
        faults,
    })
}

/// Interprets one `[[dataset]]` table.
fn parse_dataset(value: &Value) -> Result<DatasetSpec, ScenarioError> {
    let family = value
        .get("family")
        .ok_or_else(|| missing("dataset.family"))?
        .as_str()
        .ok_or_else(|| invalid("dataset.family", "<non-string>", "a family name"))?;
    let n = value
        .get("n")
        .ok_or_else(|| missing("dataset.n"))?
        .as_usize()
        .ok_or_else(|| invalid("dataset.n", "<non-integer>", "a positive integer"))?;
    let k_prime = opt_usize(value, "k_prime", 25)?;
    match family.to_ascii_lowercase().as_str() {
        "unif" => Ok(DatasetSpec::Unif { n }),
        "gau" => Ok(DatasetSpec::Gau { n, k_prime }),
        "unb" => Ok(DatasetSpec::Unb { n, k_prime }),
        "poker" => Ok(DatasetSpec::PokerHand { n }),
        "kdd" => Ok(DatasetSpec::KddCup { n }),
        "exp" => Ok(DatasetSpec::Exp { n, k_prime }),
        "dup" => Ok(DatasetSpec::Dup {
            n,
            distinct: opt_usize(value, "distinct", 16)?,
        }),
        "gau-hd" => Ok(DatasetSpec::HighDim {
            n,
            k_prime,
            dim: opt_usize(value, "dim", 64)?,
        }),
        "gau+out" | "planted" => Ok(DatasetSpec::PlantedOutliers {
            n,
            k_prime,
            outliers: opt_usize(value, "planted", (n / 100).max(1))?,
        }),
        other => Err(invalid(
            "dataset.family",
            other,
            "unif | gau | unb | poker | kdd | exp | dup | gau-hd | gau+out",
        )),
    }
}

// ---------------------------------------------------------------------------
// Running
// ---------------------------------------------------------------------------

/// One cell's measured outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct CellResult {
    /// The cell's stable identity ([`CellConfig::id`]).
    pub id: String,
    /// Human-readable dataset description.
    pub dataset: String,
    /// Number of points.
    pub n: usize,
    /// Solver name.
    pub solver: String,
    /// Precision name.
    pub precision: String,
    /// Kernel request name.
    pub kernel: String,
    /// Assignment-arm request name.
    pub assign: String,
    /// Executor name.
    pub executor: String,
    /// Distance name.
    pub distance: String,
    /// With-outliers budget.
    pub z: usize,
    /// Fault-arm label.
    pub fault: String,
    /// Certified covering radius over all points.
    pub radius: f64,
    /// Certified radius over the kept `n − z` points (`== radius` when
    /// `z = 0`).
    pub kept_radius: f64,
    /// Number of selected centers.
    pub centers: usize,
    /// Surviving coverage fraction (1.0 unless the run degraded).
    pub coverage: f64,
    /// MapReduce rounds (0 for the sequential solvers).
    pub rounds: usize,
    /// Simulated time (per-round max machine time) in nanoseconds; 0 for
    /// the sequential solvers.
    pub simulated_ns: u128,
    /// Real wall-clock nanoseconds of the cell's solve (a measurement —
    /// only gated when a tolerance is passed to the diff).
    pub wall_ns: u128,
    /// FNV-1a 64 digest of the selected center ids, in selection order —
    /// the determinism fingerprint of the cell.
    pub digest: String,
}

/// A full scenario run: the spec echo plus one [`CellResult`] per cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioReport {
    /// Scenario name.
    pub scenario: String,
    /// The shared seed.
    pub seed: u64,
    /// Centers per cell.
    pub k: usize,
    /// Per-cell results, in expansion order.
    pub cells: Vec<CellResult>,
}

/// FNV-1a 64-bit over the center ids' little-endian bytes, rendered as
/// 16 hex digits.
pub fn center_digest(centers: &[PointId]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &c in centers {
        for byte in (c as u64).to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    format!("{hash:016x}")
}

struct CellOutcome {
    centers: Vec<PointId>,
    radius: f64,
    rounds: usize,
    simulated_ns: u128,
    coverage: f64,
}

/// Runs every cell of the spec, in order, and assembles the report.
///
/// The kernel backend and assignment arm are process-global dispatch
/// state: they are installed per cell and restored to the build defaults
/// (`auto`) afterwards.  Callers running scenarios concurrently with other
/// dispatch-sensitive work must serialise externally.
pub fn run_scenario(spec: &ScenarioSpec) -> Result<ScenarioReport, ScenarioError> {
    run_scenario_with(spec, |_, _| {})
}

/// [`run_scenario`] with a per-cell progress callback `(index, id)`.
pub fn run_scenario_with(
    spec: &ScenarioSpec,
    mut progress: impl FnMut(usize, &str),
) -> Result<ScenarioReport, ScenarioError> {
    let cells = spec.cells();
    let ingest_cells = spec.ingest_cells();
    let mut results = Vec::with_capacity(cells.len() + ingest_cells.len());
    install_thread_budget(spec.threads);
    for (index, cell) in cells.iter().enumerate() {
        let id = cell.id();
        progress(index, &id);
        results.push(run_one_cell(spec, cell, id)?);
    }
    for (index, cell) in ingest_cells.iter().enumerate() {
        let id = cell.id();
        progress(cells.len() + index, &id);
        results.push(run_ingest_cell(spec, cell, id)?);
    }
    // Restore the build defaults so later work sees pristine dispatch.
    grid::set_choice(AssignChoice::Auto);
    if let Ok(backend) = KernelChoice::Auto.resolve() {
        let _ = simd::set_active(backend);
    }
    Ok(ScenarioReport {
        scenario: spec.name.clone(),
        seed: spec.seed,
        k: spec.k,
        cells: results,
    })
}

fn run_one_cell(
    spec: &ScenarioSpec,
    cell: &CellConfig,
    id: String,
) -> Result<CellResult, ScenarioError> {
    // Install the cell's dispatch state.
    let backend: KernelBackend = cell
        .kernel
        .resolve()
        .map_err(|e| invalid("kernel", kernel_label(cell.kernel), &e.to_string()))?;
    simd::set_active(backend).map_err(|e| invalid("kernel", backend.name(), &e.to_string()))?;
    grid::set_choice(cell.assign);
    let executor = cell.executor.resolve(Some(spec.threads));

    // Monomorphise on (precision, distance) and run.
    let run =
        |outcome: Result<(CellOutcome, f64), KCenterError>| -> Result<CellResult, ScenarioError> {
            let (outcome, kept_radius) =
                outcome.map_err(|e| invalid("cell", &id, &format!("solver failed: {e}")))?;
            Ok(CellResult {
                id: id.clone(),
                dataset: cell.dataset.describe(),
                n: cell.dataset.n(),
                solver: cell.solver.name().to_string(),
                precision: cell.precision.name().to_string(),
                kernel: kernel_label(cell.kernel).to_string(),
                assign: assign_label(cell.assign).to_string(),
                executor: executor_label(cell.executor).to_string(),
                distance: cell.distance.name().to_string(),
                z: cell.z,
                fault: cell.fault.label(),
                radius: outcome.radius,
                kept_radius,
                centers: outcome.centers.len(),
                coverage: outcome.coverage,
                rounds: outcome.rounds,
                simulated_ns: outcome.simulated_ns,
                wall_ns: 0, // filled below
                digest: center_digest(&outcome.centers),
            })
        };
    let start = Instant::now();
    let mut result = match (cell.precision, cell.distance) {
        (Precision::F64, DistanceKind::Euclidean) => {
            run(solve_cell::<f64, Euclidean>(spec, cell, executor))
        }
        (Precision::F32, DistanceKind::Euclidean) => {
            run(solve_cell::<f32, Euclidean>(spec, cell, executor))
        }
        (Precision::F64, DistanceKind::Manhattan) => {
            run(solve_cell::<f64, Manhattan>(spec, cell, executor))
        }
        (Precision::F32, DistanceKind::Manhattan) => {
            run(solve_cell::<f32, Manhattan>(spec, cell, executor))
        }
    }?;
    result.wall_ns = start.elapsed().as_nanos();
    Ok(result)
}

fn run_ingest_cell(
    spec: &ScenarioSpec,
    cell: &IngestCellConfig,
    id: String,
) -> Result<CellResult, ScenarioError> {
    let backend: KernelBackend = cell
        .kernel
        .resolve()
        .map_err(|e| invalid("kernel", kernel_label(cell.kernel), &e.to_string()))?;
    simd::set_active(backend).map_err(|e| invalid("kernel", backend.name(), &e.to_string()))?;
    grid::set_choice(cell.assign);
    let start = Instant::now();
    let mut result = match cell.precision {
        Precision::F64 => ingest_cell_at::<f64>(spec, cell, &id),
        Precision::F32 => ingest_cell_at::<f32>(spec, cell, &id),
    }?;
    result.wall_ns = start.elapsed().as_nanos();
    Ok(result)
}

/// Folds the cell's stream through the durable serve loop twice — once
/// uninterrupted, once killed mid-checkpoint-write and resumed — and
/// fails the cell unless the two final states are bit-identical.  The
/// reported columns come from the uninterrupted twin.
fn ingest_cell_at<S: Scalar>(
    spec: &ScenarioSpec,
    cell: &IngestCellConfig,
    id: &str,
) -> Result<CellResult, ScenarioError> {
    let fail = |what: String| invalid("cell", id, &what);
    let faults = match cell.fault {
        FaultSpec::None => None,
        FaultSpec::Seeded { seed, degrade } => Some(
            FaultConfig::new(FaultPlan::seeded(seed))
                .with_policy(FaultPolicy::with_max_attempts(spec.max_attempts))
                .with_degrade(degrade),
        ),
    };
    let config = |kill: Option<KillPoint>| IngestConfig {
        stream: StreamConfig {
            spec: cell.dataset.clone(),
            seed: spec.seed,
            batches: cell.batches,
        },
        t: cell.coreset_size,
        budget: cell.budget,
        machines: spec.machines,
        faults: faults.clone(),
        executor: Executor::Simulated,
        solve_k: spec.k,
        kill,
    };
    // Fresh temp checkpoints per cell: the scenario gate pins the final
    // state, not an on-disk resume across runs.
    let ckpt = |tag: &str| {
        std::env::temp_dir().join(format!(
            "kcenter-scenario-{}-{}-{tag}.ckpt",
            std::process::id(),
            id.replace(['/', '='], "-"),
        ))
    };
    let twin_path = ckpt("twin");
    let _ = std::fs::remove_file(&twin_path);
    let twin: Ingestor<Euclidean, S> = Ingestor::new(config(None), &twin_path)
        .map_err(|e| fail(format!("ingest setup failed: {e}")))?;
    let outcome = twin
        .run()
        .map_err(|e| fail(format!("ingest run failed: {e}")))?;

    // Crash-consistency leg: die mid-write at the middle batch, resume,
    // and require the bit-identical accumulated state.
    if cell.batches >= 2 {
        let killed_path = ckpt("killed");
        let _ = std::fs::remove_file(&killed_path);
        let kill = Some(KillPoint {
            batch: cell.batches / 2,
            stage: KillStage::DuringCheckpoint,
        });
        let killed: Ingestor<Euclidean, S> = Ingestor::new(config(kill), &killed_path)
            .map_err(|e| fail(format!("ingest setup failed: {e}")))?;
        match killed.run() {
            Err(IngestError::Killed { .. }) => {}
            Err(e) => return Err(fail(format!("killed run failed early: {e}"))),
            Ok(_) => return Err(fail("kill point did not fire".to_string())),
        }
        let resumed: Ingestor<Euclidean, S> = Ingestor::new(config(None), &killed_path)
            .map_err(|e| fail(format!("ingest setup failed: {e}")))?;
        let resumed_out = resumed
            .run()
            .map_err(|e| fail(format!("resume failed: {e}")))?;
        if resumed_out.resumed_from.is_none() {
            return Err(fail("resume did not load the checkpoint".to_string()));
        }
        if resumed_out.coreset.to_bytes() != outcome.coreset.to_bytes() {
            return Err(fail(
                "crash-consistency violated: resumed state differs from the uninterrupted twin"
                    .to_string(),
            ));
        }
        let _ = std::fs::remove_file(&killed_path);
    }

    let k = spec.k.min(outcome.coreset.len());
    let solution = outcome
        .coreset
        .solve(k, SequentialSolver::Gonzalez, FirstCenter::default())
        .map_err(|e| fail(format!("final solve failed: {e}")))?;
    let full = twin.stream().full_space();
    let radius = solution.certify(&full);
    let _ = std::fs::remove_file(&twin_path);
    Ok(CellResult {
        id: id.to_string(),
        dataset: cell.dataset.describe(),
        n: cell.dataset.n(),
        solver: "ingest".to_string(),
        precision: cell.precision.name().to_string(),
        kernel: kernel_label(cell.kernel).to_string(),
        assign: assign_label(cell.assign).to_string(),
        executor: "simulated".to_string(),
        distance: "euclidean".to_string(),
        z: 0,
        fault: cell.fault.label(),
        radius,
        kept_radius: radius,
        centers: solution.centers.len(),
        coverage: outcome.coreset.coverage_fraction(),
        rounds: outcome.meta.rounds as usize,
        simulated_ns: outcome.meta.simulated_ns,
        wall_ns: 0, // filled by the caller
        digest: center_digest(&solution.centers),
    })
}

/// Generates the cell's data, runs its solver, and certifies the plain and
/// kept radii.  Returns the outcome plus the kept radius.
fn solve_cell<S: Scalar, D: Distance + Default>(
    spec: &ScenarioSpec,
    cell: &CellConfig,
    executor: Executor,
) -> Result<(CellOutcome, f64), KCenterError> {
    let flat = cell.dataset.generate_flat_at::<S>(spec.seed);
    let space: VecSpace<D, S> = VecSpace::from_flat_with_distance(flat, D::default());

    let faults = match cell.fault {
        FaultSpec::None => None,
        FaultSpec::Seeded { seed, degrade } => Some(
            FaultConfig::new(FaultPlan::seeded(seed))
                .with_policy(FaultPolicy::with_max_attempts(spec.max_attempts))
                .with_degrade(degrade),
        ),
    };

    let outcome = match cell.solver {
        SolverKind::Gon => {
            let sol = GonzalezConfig::new(spec.k)
                .with_parallel_scan(true)
                .solve(&space)?;
            CellOutcome {
                centers: sol.centers,
                radius: sol.radius,
                rounds: 0,
                simulated_ns: 0,
                coverage: 1.0,
            }
        }
        SolverKind::Hs => {
            let sol = HochbaumShmoysConfig::new(spec.k).solve(&space)?;
            CellOutcome {
                centers: sol.centers,
                radius: sol.radius,
                rounds: 0,
                simulated_ns: 0,
                coverage: 1.0,
            }
        }
        SolverKind::Mrg => {
            let mut config = MrgConfig::new(spec.k)
                .with_machines(spec.machines)
                .with_unchecked_capacity()
                .with_first_center(FirstCenter::Seeded(spec.seed))
                .with_executor(executor);
            if let Some(faults) = faults {
                config = config.with_faults(faults);
            }
            let result = config.run(&space)?;
            CellOutcome {
                centers: result.solution.centers,
                radius: result.solution.radius,
                rounds: result.mapreduce_rounds,
                simulated_ns: result.stats.simulated_time().as_nanos(),
                coverage: result
                    .degraded
                    .as_ref()
                    .map_or(1.0, |d| d.coverage_fraction()),
            }
        }
        SolverKind::Eim => {
            let mut config = EimConfig::new(spec.k)
                .with_machines(spec.machines)
                .with_phi(spec.phi)
                .with_epsilon(spec.epsilon)
                .with_seed(spec.seed)
                .with_executor(executor);
            if let Some(faults) = faults {
                config = config.with_faults(faults);
            }
            let result = config.run(&space)?;
            CellOutcome {
                centers: result.solution.centers,
                radius: result.solution.radius,
                rounds: result.mapreduce_rounds,
                simulated_ns: result.stats.simulated_time().as_nanos(),
                coverage: result
                    .degraded
                    .as_ref()
                    .map_or(1.0, |d| d.coverage_fraction()),
            }
        }
    };

    let kept_radius = if cell.z > 0 {
        evaluate_with_outliers(&space, &outcome.centers, cell.z).radius
    } else {
        outcome.radius
    };
    Ok((outcome, kept_radius))
}

// ---------------------------------------------------------------------------
// Report serialisation
// ---------------------------------------------------------------------------

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Emits a finite `f64` as a JSON number.  Rust's `Display` prints the
/// shortest decimal that parses back to the identical bits, so reports
/// round-trip radii exactly.
fn json_f64(v: f64) -> String {
    debug_assert!(v.is_finite(), "report metrics are finite");
    let s = format!("{v}");
    // `Display` omits the decimal point for integral values; keep it so the
    // field reads as a float in any consumer.
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

impl ScenarioReport {
    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(
            out,
            "  \"scenario\": \"{}\",\n  \"schema_version\": 1,\n  \"seed\": {},\n  \"k\": {},",
            json_escape(&self.scenario),
            self.seed,
            self.k
        );
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"id\": \"{}\", \"dataset\": \"{}\", \"n\": {}, \"solver\": \"{}\", \"precision\": \"{}\", \"kernel\": \"{}\", \"assign\": \"{}\", \"executor\": \"{}\", \"distance\": \"{}\", \"z\": {}, \"fault\": \"{}\", \"radius\": {}, \"kept_radius\": {}, \"centers\": {}, \"coverage\": {}, \"rounds\": {}, \"simulated_ns\": {}, \"wall_ns\": {}, \"digest\": \"{}\"}}",
                json_escape(&cell.id),
                json_escape(&cell.dataset),
                cell.n,
                json_escape(&cell.solver),
                json_escape(&cell.precision),
                json_escape(&cell.kernel),
                json_escape(&cell.assign),
                json_escape(&cell.executor),
                json_escape(&cell.distance),
                cell.z,
                json_escape(&cell.fault),
                json_f64(cell.radius),
                json_f64(cell.kept_radius),
                cell.centers,
                json_f64(cell.coverage),
                cell.rounds,
                cell.simulated_ns,
                cell.wall_ns,
                json_escape(&cell.digest),
            );
            out.push_str(if i + 1 < self.cells.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses a report back from its JSON rendering.
    pub fn from_json(text: &str) -> Result<Self, ScenarioError> {
        let doc = parse_json(text)?;
        let str_field = |v: &Value, key: &str| -> Result<String, ScenarioError> {
            v.get(key)
                .and_then(Value::as_str)
                .map(str::to_string)
                .ok_or_else(|| missing(&format!("cell.{key}")))
        };
        let num_field = |v: &Value, key: &str| -> Result<f64, ScenarioError> {
            v.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| missing(&format!("cell.{key}")))
        };
        let int_field = |v: &Value, key: &str| -> Result<usize, ScenarioError> {
            v.get(key)
                .and_then(Value::as_usize)
                .ok_or_else(|| missing(&format!("cell.{key}")))
        };
        let scenario = doc
            .get("scenario")
            .and_then(Value::as_str)
            .ok_or_else(|| missing("scenario"))?
            .to_string();
        let seed = doc
            .get("seed")
            .and_then(Value::as_u64)
            .ok_or_else(|| missing("seed"))?;
        let k = doc
            .get("k")
            .and_then(Value::as_usize)
            .ok_or_else(|| missing("k"))?;
        let cell_values = doc
            .get("cells")
            .and_then(Value::as_array)
            .ok_or_else(|| missing("cells"))?;
        let mut cells = Vec::with_capacity(cell_values.len());
        for v in cell_values {
            cells.push(CellResult {
                id: str_field(v, "id")?,
                dataset: str_field(v, "dataset")?,
                n: int_field(v, "n")?,
                solver: str_field(v, "solver")?,
                precision: str_field(v, "precision")?,
                kernel: str_field(v, "kernel")?,
                assign: str_field(v, "assign")?,
                executor: str_field(v, "executor")?,
                distance: str_field(v, "distance")?,
                z: int_field(v, "z")?,
                fault: str_field(v, "fault")?,
                radius: num_field(v, "radius")?,
                kept_radius: num_field(v, "kept_radius")?,
                centers: int_field(v, "centers")?,
                coverage: num_field(v, "coverage")?,
                rounds: int_field(v, "rounds")?,
                simulated_ns: num_field(v, "simulated_ns")? as u128,
                wall_ns: num_field(v, "wall_ns")? as u128,
                digest: str_field(v, "digest")?,
            });
        }
        Ok(ScenarioReport {
            scenario,
            seed,
            k,
            cells,
        })
    }
}

// ---------------------------------------------------------------------------
// Diffing
// ---------------------------------------------------------------------------

/// Per-metric tolerances for [`diff_reports`].
///
/// The deterministic metrics (digest, centers, rounds, coverage) are
/// always gated exactly; radii admit an absolute tolerance (default 0 —
/// exact, which is sound because the JSON round-trip is bit-exact).  The
/// timing columns are machine measurements and are only gated when their
/// fractional tolerance is `Some`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffTolerances {
    /// Absolute tolerance on `radius` / `kept_radius`.
    pub radius: f64,
    /// Allowed fractional slowdown of `simulated_ns` (e.g. `0.10` = 10%);
    /// `None` leaves simulated time ungated.
    pub simulated_frac: Option<f64>,
    /// Allowed fractional slowdown of `wall_ns`; `None` (the default for
    /// committed cross-machine baselines) leaves wall time ungated.
    pub wall_frac: Option<f64>,
}

impl Default for DiffTolerances {
    fn default() -> Self {
        DiffTolerances {
            radius: 0.0,
            simulated_frac: None,
            wall_frac: None,
        }
    }
}

/// Compares `current` against `baseline` and returns one line per
/// regression (empty = gate passes).  Cell sets must match exactly; each
/// matched cell's deterministic metrics must agree per the tolerances.
pub fn diff_reports(
    baseline: &ScenarioReport,
    current: &ScenarioReport,
    tol: &DiffTolerances,
) -> Vec<String> {
    let mut regressions = Vec::new();
    if baseline.scenario != current.scenario {
        regressions.push(format!(
            "scenario name changed: {:?} -> {:?}",
            baseline.scenario, current.scenario
        ));
    }
    if baseline.seed != current.seed || baseline.k != current.k {
        regressions.push(format!(
            "run parameters changed: seed {} -> {}, k {} -> {}",
            baseline.seed, current.seed, baseline.k, current.k
        ));
    }
    for base in &baseline.cells {
        let Some(cur) = current.cells.iter().find(|c| c.id == base.id) else {
            regressions.push(format!("cell disappeared: {}", base.id));
            continue;
        };
        diff_cell(base, cur, tol, &mut regressions);
    }
    for cur in &current.cells {
        if !baseline.cells.iter().any(|b| b.id == cur.id) {
            regressions.push(format!(
                "new cell not in baseline (re-baseline to accept): {}",
                cur.id
            ));
        }
    }
    regressions
}

fn diff_cell(base: &CellResult, cur: &CellResult, tol: &DiffTolerances, out: &mut Vec<String>) {
    let id = &base.id;
    if base.digest != cur.digest {
        out.push(format!(
            "{id}: determinism digest changed {} -> {} (center set drifted)",
            base.digest, cur.digest
        ));
    }
    if base.centers != cur.centers {
        out.push(format!(
            "{id}: center count changed {} -> {}",
            base.centers, cur.centers
        ));
    }
    if base.n != cur.n {
        out.push(format!(
            "{id}: dataset size changed {} -> {}",
            base.n, cur.n
        ));
    }
    if base.rounds != cur.rounds {
        out.push(format!(
            "{id}: MapReduce rounds changed {} -> {}",
            base.rounds, cur.rounds
        ));
    }
    if base.coverage != cur.coverage {
        out.push(format!(
            "{id}: coverage fraction changed {} -> {}",
            base.coverage, cur.coverage
        ));
    }
    if (base.radius - cur.radius).abs() > tol.radius {
        out.push(format!(
            "{id}: certified radius drifted {} -> {} (|delta| > {})",
            base.radius, cur.radius, tol.radius
        ));
    }
    if (base.kept_radius - cur.kept_radius).abs() > tol.radius {
        out.push(format!(
            "{id}: kept (with-outliers) radius drifted {} -> {} (|delta| > {})",
            base.kept_radius, cur.kept_radius, tol.radius
        ));
    }
    if let Some(frac) = tol.simulated_frac {
        let limit = base.simulated_ns as f64 * (1.0 + frac);
        if cur.simulated_ns as f64 > limit {
            out.push(format!(
                "{id}: simulated time regressed {} ns -> {} ns (> {:.0}% over baseline)",
                base.simulated_ns,
                cur.simulated_ns,
                frac * 100.0
            ));
        }
    }
    if let Some(frac) = tol.wall_frac {
        let limit = base.wall_ns as f64 * (1.0 + frac);
        if cur.wall_ns as f64 > limit {
            out.push(format!(
                "{id}: wall time regressed {} ns -> {} ns (> {:.0}% over baseline)",
                base.wall_ns,
                cur.wall_ns,
                frac * 100.0
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"
name = "unit"
seed = 7
k = 3

[grid]
solvers = ["gon", "mrg"]
precisions = ["f64"]
kernels = ["scalar"]
faults = ["none", "seed=5"]

[[dataset]]
family = "gau"
n = 120
k_prime = 3
"#;

    #[test]
    fn toml_spec_parses_with_defaults() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        assert_eq!(spec.name, "unit");
        assert_eq!(spec.seed, 7);
        assert_eq!(spec.k, 3);
        assert_eq!(spec.machines, 8);
        assert_eq!(spec.solvers, vec![SolverKind::Gon, SolverKind::Mrg]);
        assert_eq!(
            spec.kernels,
            vec![KernelChoice::Fixed(KernelBackend::Scalar)]
        );
        assert_eq!(spec.executors, vec![ExecutorChoice::Simulated]);
        assert_eq!(spec.outliers, vec![0]);
        assert_eq!(
            spec.faults,
            vec![
                FaultSpec::None,
                FaultSpec::Seeded {
                    seed: 5,
                    degrade: false
                }
            ]
        );
        assert_eq!(spec.datasets, vec![DatasetSpec::Gau { n: 120, k_prime: 3 }]);
    }

    #[test]
    fn grid_expansion_skips_sequential_fault_cells() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let cells = spec.cells();
        // gon gets only the fault-free arm; mrg gets both.
        assert_eq!(cells.len(), 3);
        assert!(cells
            .iter()
            .all(|c| c.solver != SolverKind::Gon || c.fault == FaultSpec::None));
        // Ids are unique.
        let ids: std::collections::HashSet<String> = cells.iter().map(|c| c.id()).collect();
        assert_eq!(ids.len(), cells.len());
    }

    #[test]
    fn json_and_toml_specs_agree() {
        let json = r#"{
            "name": "unit", "seed": 7, "k": 3,
            "grid": {
                "solvers": ["gon", "mrg"],
                "precisions": ["f64"],
                "kernels": ["scalar"],
                "faults": ["none", "seed=5"]
            },
            "datasets": [{"family": "gau", "n": 120, "k_prime": 3}]
        }"#;
        assert_eq!(
            ScenarioSpec::parse(SPEC).unwrap(),
            ScenarioSpec::parse(json).unwrap()
        );
    }

    #[test]
    fn malformed_specs_are_named_errors() {
        // Missing k.
        let err = ScenarioSpec::parse("name = \"x\"\n[[dataset]]\nfamily = \"gau\"\nn = 10\n")
            .unwrap_err();
        assert_eq!(
            err,
            ScenarioError::Missing {
                what: "k".to_string()
            }
        );
        // Unknown solver.
        let err = ScenarioSpec::parse(
            "name = \"x\"\nk = 2\n[grid]\nsolvers = [\"quantum\"]\n[[dataset]]\nfamily = \"gau\"\nn = 10\n",
        )
        .unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid { ref what, .. } if what == "solver"));
        // Syntax garbage carries the line number.
        let err = ScenarioSpec::parse("name = \"x\"\nk = 2\nwat\n").unwrap_err();
        assert_eq!(
            err,
            ScenarioError::Syntax {
                line: 3,
                message: "expected `key = value` or a [section] header, found \"wat\"".to_string()
            }
        );
        // No datasets.
        let err = ScenarioSpec::parse("name = \"x\"\nk = 2\n").unwrap_err();
        assert!(matches!(err, ScenarioError::Missing { ref what } if what == "dataset"));
        // Unknown family.
        let err =
            ScenarioSpec::parse("name = \"x\"\nk = 2\n[[dataset]]\nfamily = \"fractal\"\nn = 10\n")
                .unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid { ref what, .. } if what == "dataset.family"));
    }

    #[test]
    fn toml_parser_handles_comments_underscores_and_strings() {
        let doc = parse_toml(
            "a = 1_000 # comment\nb = \"with # hash\"\nc = [1, 2.5, \"x, y\"]\nd = true\n",
        )
        .unwrap();
        assert_eq!(doc.get("a").unwrap().as_usize(), Some(1000));
        assert_eq!(doc.get("b").unwrap().as_str(), Some("with # hash"));
        assert_eq!(
            doc.get("c").unwrap(),
            &Value::Array(vec![
                Value::Num(1.0),
                Value::Num(2.5),
                Value::Str("x, y".to_string())
            ])
        );
        assert_eq!(doc.get("d").unwrap(), &Value::Bool(true));
    }

    #[test]
    fn json_numbers_round_trip_bit_exactly() {
        for v in [0.1, 1.0 / 3.0, 123456.789012345, 1e-15, 2f64.powi(-40)] {
            let text = json_f64(v);
            let parsed = parse_json(&text).unwrap().as_f64().unwrap();
            assert_eq!(parsed.to_bits(), v.to_bits(), "{text}");
        }
    }

    #[test]
    fn digest_is_order_sensitive_and_stable() {
        assert_eq!(
            center_digest(&[]),
            format!("{:016x}", 0xcbf29ce484222325u64)
        );
        assert_ne!(center_digest(&[1, 2]), center_digest(&[2, 1]));
        assert_eq!(center_digest(&[1, 2, 3]), center_digest(&[1, 2, 3]));
    }

    #[test]
    fn scaled_shrinks_datasets_only() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        let scaled = spec.scaled(0.5);
        assert_eq!(scaled.datasets[0].n(), 60);
        assert_eq!(scaled.k, spec.k);
        assert_eq!(scaled.solvers, spec.solvers);
    }

    const INGEST_SPEC: &str = r#"
name = "unit-ingest"
seed = 11
k = 3
machines = 4

[grid]
solvers = ["gon"]
precisions = ["f64"]
kernels = ["scalar"]

[ingest]
batches = [2, 3]
coreset_size = 12
kernel = "scalar"
assign = "dense"
faults = ["none", "seed=9"]

[[dataset]]
family = "gau"
n = 240
k_prime = 3
"#;

    #[test]
    fn ingest_table_parses_and_expands() {
        let spec = ScenarioSpec::parse(INGEST_SPEC).unwrap();
        let axes = spec.ingest.as_ref().expect("ingest table parsed");
        assert_eq!(axes.batches, vec![2, 3]);
        assert_eq!(axes.coreset_size, 12);
        // Budget defaults to 4 × coreset_size.
        assert_eq!(axes.budget, 48);
        assert_eq!(axes.kernel, KernelChoice::Fixed(KernelBackend::Scalar));
        assert_eq!(axes.assign, AssignChoice::Fixed(AssignMode::Dense));

        let cells = spec.ingest_cells();
        // 1 dataset × 1 precision × 2 batch counts × 2 faults.
        assert_eq!(cells.len(), 4);
        let ids: std::collections::HashSet<String> = cells.iter().map(|c| c.id()).collect();
        assert_eq!(ids.len(), cells.len());
        // Disjoint namespace: every ingest id carries the prefix, no solve
        // cell does.
        assert!(cells.iter().all(|c| c.id().starts_with("ingest/")));
        assert!(spec.cells().iter().all(|c| !c.id().starts_with("ingest/")));
        assert_eq!(
            cells[0].id(),
            "ingest/d0-gau-n240/b2/t12/g48/f64/scalar/dense/none"
        );
    }

    #[test]
    fn specs_without_an_ingest_table_run_no_ingest_cells() {
        let spec = ScenarioSpec::parse(SPEC).unwrap();
        assert!(spec.ingest.is_none());
        assert!(spec.ingest_cells().is_empty());
    }

    #[test]
    fn malformed_ingest_tables_are_named_errors() {
        // Missing batches axis.
        let err = ScenarioSpec::parse(
            "name = \"x\"\nk = 2\n[ingest]\ncoreset_size = 8\n[[dataset]]\nfamily = \"gau\"\nn = 10\n",
        )
        .unwrap_err();
        assert!(matches!(err, ScenarioError::Missing { ref what } if what == "ingest.batches"));
        // Zero batch count.
        let err = ScenarioSpec::parse(
            "name = \"x\"\nk = 2\n[ingest]\nbatches = [0]\n[[dataset]]\nfamily = \"gau\"\nn = 10\n",
        )
        .unwrap_err();
        assert!(
            matches!(err, ScenarioError::Invalid { ref what, .. } if what == "ingest.batches entry")
        );
        // Unknown kernel.
        let err = ScenarioSpec::parse(
            "name = \"x\"\nk = 2\n[ingest]\nbatches = [2]\nkernel = \"warp\"\n[[dataset]]\nfamily = \"gau\"\nn = 10\n",
        )
        .unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid { ref what, .. } if what == "ingest.kernel"));
    }

    #[test]
    fn ingest_cells_run_deterministically_end_to_end() {
        // Small spec: 1 solve cell + 2 ingest cells, each of which also
        // exercises the inline kill/resume crash-consistency leg.
        let spec = ScenarioSpec::parse(
            r#"
name = "unit-ingest-run"
seed = 11
k = 3
machines = 4

[grid]
solvers = ["gon"]
precisions = ["f64"]
kernels = ["scalar"]

[ingest]
batches = [3]
coreset_size = 10
kernel = "scalar"
assign = "dense"
faults = ["none", "seed=9"]

[[dataset]]
family = "gau"
n = 200
k_prime = 3
"#,
        )
        .unwrap();
        let a = run_scenario(&spec).unwrap();
        let b = run_scenario(&spec).unwrap();
        assert_eq!(a.cells.len(), 3);
        let ingest: Vec<&CellResult> = a
            .cells
            .iter()
            .filter(|c| c.id.starts_with("ingest/"))
            .collect();
        assert_eq!(ingest.len(), 2);
        for cell in &ingest {
            assert_eq!(cell.solver, "ingest");
            assert!(cell.centers >= 1 && cell.centers <= 3);
            assert!(cell.radius.is_finite() && cell.radius > 0.0);
            assert!(cell.coverage > 0.0 && cell.coverage <= 1.0);
        }
        // Deterministic columns repeat bit-exactly (timing columns are
        // measurements and excluded, as in report diffing).
        for (ca, cb) in a.cells.iter().zip(&b.cells) {
            assert_eq!(ca.id, cb.id);
            assert_eq!(ca.digest, cb.digest);
            assert_eq!(ca.centers, cb.centers);
            assert_eq!(ca.rounds, cb.rounds);
            assert_eq!(ca.radius.to_bits(), cb.radius.to_bits(), "{}", ca.id);
            assert_eq!(ca.coverage.to_bits(), cb.coverage.to_bits());
        }
        // The retried fault arm converges to the fault-free digest: retries
        // change attempt counts, never the accumulated summary.
        assert_eq!(ingest[0].digest, ingest[1].digest);
    }
}
