//! Executor A/B: the same MapReduce job on the paper's simulated executor
//! and on the threaded one at several worker budgets.
//!
//! The determinism contract says the executor never changes an *output*:
//! centers, radii and round counts are bit-identical at any thread count.
//! The timing columns are measurements — the simulated column charges the
//! paper's per-round max machine time either way, while the wall column
//! records what really elapsed.  This harness measures what the threaded
//! executor
//! actually buys — or costs — on the measuring host, and verifies the
//! contract on every run it times.  On a single-core host the threaded
//! rows are expected to run *slower* than simulated (scope spawn/join
//! overhead with no parallelism to pay for it); the report records
//! `host_cores` next to every row so that overhead is disclosed rather
//! than hidden.

use kcenter_core::prelude::*;
use kcenter_data::DatasetSpec;
use kcenter_mapreduce::Executor;
use std::time::Duration;

/// One timed run of the comparison job under one executor.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorRun {
    /// The executor the run used.
    pub executor: Executor,
    /// MapReduce rounds the job spent.
    pub rounds: usize,
    /// The paper's metric: per-round max simulated machine time, summed.
    pub simulated: Duration,
    /// Total work (sum of all machines' processing time over all rounds).
    pub sequential: Duration,
    /// Real concurrent elapsed time, summed over rounds.
    pub wall: Duration,
    /// Covering radius of the run's solution.
    pub radius: f64,
    /// Whether centers, radius and round count equal the simulated
    /// baseline's bit for bit (trivially true for the baseline itself).
    pub bit_identical: bool,
}

/// The outcome of one executor comparison: the simulated baseline first,
/// then one row per requested thread budget.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorComparison {
    /// Workload description (spec + seed).
    pub workload: String,
    /// Instance size.
    pub n: usize,
    /// Number of centers.
    pub k: usize,
    /// Simulated machines per round.
    pub machines: usize,
    /// The baseline, then one run per budget, in request order.
    pub runs: Vec<ExecutorRun>,
}

impl ExecutorComparison {
    /// Whether every threaded run reproduced the simulated baseline.
    pub fn all_bit_identical(&self) -> bool {
        self.runs.iter().all(|r| r.bit_identical)
    }
}

/// Runs MRG on `spec` once per executor — the simulated baseline first,
/// then `Executor::threads(b)` for each budget in `thread_budgets` — and
/// checks every threaded solution against the baseline bit for bit.
pub fn run_executor_comparison(
    spec: &DatasetSpec,
    seed: u64,
    k: usize,
    machines: usize,
    thread_budgets: &[usize],
) -> ExecutorComparison {
    let dataset = spec.build_at::<f64>(seed);
    let space = &dataset.space;
    // The paper's two-round capacity, sized to *this* machine count.
    let capacity = dataset.len().div_ceil(machines.max(1)).max(k * machines);

    let mut executors = vec![Executor::Simulated];
    executors.extend(thread_budgets.iter().map(|&b| Executor::threads(b)));

    let mut baseline: Option<MrgResult> = None;
    let mut runs = Vec::with_capacity(executors.len());
    for executor in executors {
        let result = MrgConfig::new(k)
            .with_machines(machines)
            .with_capacity(capacity)
            .with_executor(executor)
            .run(space)
            .expect("MRG runs");
        let bit_identical = baseline.as_ref().is_none_or(|base| {
            base.solution.centers == result.solution.centers
                && base.solution.radius == result.solution.radius
                && base.mapreduce_rounds == result.mapreduce_rounds
        });
        runs.push(ExecutorRun {
            executor,
            rounds: result.stats.num_rounds(),
            simulated: result.stats.simulated_time(),
            sequential: result.stats.sequential_time(),
            wall: result.stats.wall_time(),
            radius: result.solution.radius,
            bit_identical,
        });
        if baseline.is_none() {
            baseline = Some(result);
        }
    }

    ExecutorComparison {
        workload: format!("{} seed {seed}", spec.describe()),
        n: dataset.len(),
        k,
        machines,
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_times_every_executor_and_verifies_identity() {
        let spec = DatasetSpec::Gau {
            n: 4_000,
            k_prime: 5,
        };
        let cmp = run_executor_comparison(&spec, 7, 5, 8, &[1, 2]);
        assert_eq!(cmp.runs.len(), 3);
        assert_eq!(cmp.runs[0].executor, Executor::Simulated);
        assert_eq!(cmp.runs[1].executor, Executor::threads(1));
        assert_eq!(cmp.runs[2].executor, Executor::threads(2));
        assert!(cmp.all_bit_identical());
        for run in &cmp.runs {
            assert!(run.rounds > 0);
            assert!(run.wall > Duration::ZERO);
            assert!(run.simulated > Duration::ZERO);
            assert!(run.sequential >= run.simulated);
            assert!(run.radius.is_finite());
        }
        // The *outputs* are executor-invariant; the timing columns are
        // measurements and may differ run to run.
        assert_eq!(cmp.runs[0].radius, cmp.runs[1].radius);
        assert_eq!(cmp.runs[0].radius, cmp.runs[2].radius);
        assert_eq!(cmp.runs[0].rounds, cmp.runs[1].rounds);
    }
}
