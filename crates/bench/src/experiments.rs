//! The experiment registry: one entry per table and figure in the paper.
//!
//! | id | paper content | workload |
//! |----|---------------|----------|
//! | `table1`  | theoretical comparison | analytic |
//! | `table2`  | solution value vs k | GAU n=1M, k'=25 |
//! | `table3`  | solution value vs k | UNIF n=100k |
//! | `table4`  | solution value vs k | UNB n=200k, k'=25 |
//! | `table5`  | solution value vs k | Poker Hand (simulated) |
//! | `table6`  | EIM value vs φ | GAU n=200k, k'=25 |
//! | `table7`  | EIM runtime vs φ | GAU n=200k, k'=25 |
//! | `figure1` | solution value vs k | KDD Cup 1999 (simulated) |
//! | `figure2a`| runtime vs k | GAU n=1M, k'=25 |
//! | `figure2b`| runtime vs k | UNIF n=100k |
//! | `figure3a`| runtime vs k | GAU n=1M, k'=50 |
//! | `figure3b`| runtime vs k | GAU n=50k, k'=50 |
//! | `figure4a`| runtime vs n (10k–1M) | UNIF, k=10 |
//! | `figure4b`| runtime vs n (10k–1M) | UNIF, k=100 |
//!
//! Every experiment accepts a *scale factor* so the paper-sized workloads
//! (up to a million points) can be shrunk proportionally for CI runs while
//! keeping the same shape; `scale = 1.0` reproduces the published sizes.

use crate::measure::{run_averaged, Algorithm, MeasureConfig, Measurement};
use kcenter_core::cost_model;
use kcenter_data::DatasetSpec;
use serde::{Deserialize, Serialize};

/// The values of `k` used by the paper's tables (Tables 2–7).
pub const TABLE_KS: [usize; 6] = [2, 5, 10, 25, 50, 100];

/// The values of `k` sampled for the runtime figures (the paper plots a
/// dense range from 0 to 100; these are the sampled grid points).
pub const FIGURE_KS: [usize; 6] = [2, 5, 10, 25, 50, 100];

/// The φ values of Tables 6 and 7.
pub const PHIS: [f64; 4] = [1.0, 4.0, 6.0, 8.0];

/// The n sweep of Figure 4 (10,000 through 1,000,000).
pub const FIGURE4_NS: [usize; 5] = [10_000, 50_000, 100_000, 500_000, 1_000_000];

/// What an experiment measures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ExperimentKind {
    /// Print the theoretical comparison (Table 1).
    Theory,
    /// Sweep k and report the solution value of MRG / EIM / GON.
    SolutionValueVsK {
        /// The workload.
        spec: DatasetSpec,
        /// The k values to sweep.
        ks: Vec<usize>,
    },
    /// Sweep k and report the runtime of MRG / EIM / GON.
    RuntimeVsK {
        /// The workload.
        spec: DatasetSpec,
        /// The k values to sweep.
        ks: Vec<usize>,
    },
    /// Sweep n at fixed k and report runtimes (Figure 4).
    RuntimeVsN {
        /// The workloads, one per n.
        specs: Vec<DatasetSpec>,
        /// The fixed k.
        k: usize,
    },
    /// Sweep φ (and k) for EIM only, reporting the solution value (Table 6)
    /// or the runtime (Table 7).
    PhiSweep {
        /// The workload.
        spec: DatasetSpec,
        /// The k values to sweep.
        ks: Vec<usize>,
        /// The φ values to sweep.
        phis: Vec<f64>,
        /// `true` to report runtimes, `false` to report solution values.
        report_runtime: bool,
    },
}

/// One experiment of the paper's evaluation section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Experiment {
    /// Identifier used on the `repro` command line (e.g. `"table2"`).
    pub id: &'static str,
    /// Human-readable description, quoting the paper's caption.
    pub title: &'static str,
    /// What to run.
    pub kind: ExperimentKind,
}

/// A single row of an experiment result (one k / n / φ configuration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResultRow {
    /// The sweep coordinate (`k`, `n`, or `φ` rendered as text).
    pub coordinate: String,
    /// One measurement per algorithm column.
    pub measurements: Vec<Measurement>,
}

/// The outcome of running one experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The experiment id.
    pub id: String,
    /// The experiment title.
    pub title: String,
    /// Column headers (algorithm labels, or φ values for the φ sweeps).
    pub columns: Vec<String>,
    /// Whether the cells hold runtimes (seconds) rather than solution
    /// values.
    pub is_runtime: bool,
    /// The rows, in sweep order.
    pub rows: Vec<ResultRow>,
    /// The scale factor the workloads were shrunk by (1.0 = paper size).
    pub scale: f64,
}

/// Execution options for the experiment runner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunOptions {
    /// Workload scale factor (1.0 reproduces the paper's sizes).
    pub scale: f64,
    /// Number of simulated machines (the paper uses 50).
    pub machines: usize,
    /// Number of runs to average per configuration.
    pub repeats: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            scale: 1.0,
            machines: 50,
            repeats: 1,
            seed: 1,
        }
    }
}

/// All experiments of the paper's evaluation, in presentation order.
pub fn all_experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "table1",
            title: "Table 1: theoretical comparison of the algorithms",
            kind: ExperimentKind::Theory,
        },
        Experiment {
            id: "table2",
            title: "Table 2: solution value over k for GAU (n = 1,000,000, k' = 25)",
            kind: ExperimentKind::SolutionValueVsK {
                spec: DatasetSpec::Gau {
                    n: 1_000_000,
                    k_prime: 25,
                },
                ks: TABLE_KS.to_vec(),
            },
        },
        Experiment {
            id: "table3",
            title: "Table 3: solution value over k for UNIF (n = 100,000)",
            kind: ExperimentKind::SolutionValueVsK {
                spec: DatasetSpec::Unif { n: 100_000 },
                ks: TABLE_KS.to_vec(),
            },
        },
        Experiment {
            id: "table4",
            title: "Table 4: solution value over k for UNB (n = 200,000, k' = 25)",
            kind: ExperimentKind::SolutionValueVsK {
                spec: DatasetSpec::Unb {
                    n: 200_000,
                    k_prime: 25,
                },
                ks: TABLE_KS.to_vec(),
            },
        },
        Experiment {
            id: "table5",
            title: "Table 5: solution value over k for the POKER HAND data set",
            kind: ExperimentKind::SolutionValueVsK {
                spec: DatasetSpec::PokerHand { n: 25_010 },
                ks: TABLE_KS.to_vec(),
            },
        },
        Experiment {
            id: "table6",
            title: "Table 6: average EIM solution value over phi for GAU (n = 200,000, k' = 25)",
            kind: ExperimentKind::PhiSweep {
                spec: DatasetSpec::Gau {
                    n: 200_000,
                    k_prime: 25,
                },
                ks: TABLE_KS.to_vec(),
                phis: PHIS.to_vec(),
                report_runtime: false,
            },
        },
        Experiment {
            id: "table7",
            title: "Table 7: average EIM runtime over phi for GAU (n = 200,000, k' = 25)",
            kind: ExperimentKind::PhiSweep {
                spec: DatasetSpec::Gau {
                    n: 200_000,
                    k_prime: 25,
                },
                ks: TABLE_KS.to_vec(),
                phis: PHIS.to_vec(),
                report_runtime: true,
            },
        },
        Experiment {
            id: "figure1",
            title: "Figure 1: solution values over k on KDD CUP 1999 (10% sample)",
            kind: ExperimentKind::SolutionValueVsK {
                spec: DatasetSpec::KddCup { n: 494_021 },
                ks: FIGURE_KS.to_vec(),
            },
        },
        Experiment {
            id: "figure2a",
            title: "Figure 2a: runtimes over k, GAU (n = 1,000,000, k' = 25)",
            kind: ExperimentKind::RuntimeVsK {
                spec: DatasetSpec::Gau {
                    n: 1_000_000,
                    k_prime: 25,
                },
                ks: FIGURE_KS.to_vec(),
            },
        },
        Experiment {
            id: "figure2b",
            title: "Figure 2b: runtimes over k, UNIF (n = 100,000)",
            kind: ExperimentKind::RuntimeVsK {
                spec: DatasetSpec::Unif { n: 100_000 },
                ks: FIGURE_KS.to_vec(),
            },
        },
        Experiment {
            id: "figure3a",
            title: "Figure 3a: runtimes over k, GAU (n = 1,000,000, k' = 50)",
            kind: ExperimentKind::RuntimeVsK {
                spec: DatasetSpec::Gau {
                    n: 1_000_000,
                    k_prime: 50,
                },
                ks: FIGURE_KS.to_vec(),
            },
        },
        Experiment {
            id: "figure3b",
            title: "Figure 3b: runtimes over k, GAU (n = 50,000, k' = 50)",
            kind: ExperimentKind::RuntimeVsK {
                spec: DatasetSpec::Gau {
                    n: 50_000,
                    k_prime: 50,
                },
                ks: FIGURE_KS.to_vec(),
            },
        },
        Experiment {
            id: "figure4a",
            title: "Figure 4a: runtimes over n (10k to 1M), k = 10, UNIF",
            kind: ExperimentKind::RuntimeVsN {
                specs: FIGURE4_NS
                    .iter()
                    .map(|&n| DatasetSpec::Unif { n })
                    .collect(),
                k: 10,
            },
        },
        Experiment {
            id: "figure4b",
            title: "Figure 4b: runtimes over n (10k to 1M), k = 100, UNIF",
            kind: ExperimentKind::RuntimeVsN {
                specs: FIGURE4_NS
                    .iter()
                    .map(|&n| DatasetSpec::Unif { n })
                    .collect(),
                k: 100,
            },
        },
    ]
}

/// Looks an experiment up by id.
pub fn find_experiment(id: &str) -> Option<Experiment> {
    all_experiments().into_iter().find(|e| e.id == id)
}

/// Runs one experiment and collects its result rows.
pub fn run_experiment(experiment: &Experiment, options: RunOptions) -> ExperimentResult {
    assert!(options.scale > 0.0, "scale must be positive");
    assert!(options.repeats > 0, "at least one repeat is required");
    let config = MeasureConfig {
        machines: options.machines,
        seed: options.seed,
        epsilon: 0.1,
    };

    match &experiment.kind {
        ExperimentKind::Theory => theory_result(experiment, options),
        ExperimentKind::SolutionValueVsK { spec, ks } => {
            sweep_k(experiment, spec, ks, false, config, options)
        }
        ExperimentKind::RuntimeVsK { spec, ks } => {
            sweep_k(experiment, spec, ks, true, config, options)
        }
        ExperimentKind::RuntimeVsN { specs, k } => {
            let columns: Vec<String> = Algorithm::paper_trio()
                .iter()
                .map(Algorithm::label)
                .collect();
            let mut rows = Vec::new();
            for spec in specs {
                let scaled = spec.scaled(options.scale);
                let dataset = scaled.build(options.seed);
                let measurements = Algorithm::paper_trio()
                    .into_iter()
                    .map(|a| run_averaged(&dataset.space, a, *k, config, options.repeats))
                    .collect();
                rows.push(ResultRow {
                    coordinate: format!("n={}", scaled.n()),
                    measurements,
                });
            }
            ExperimentResult {
                id: experiment.id.to_string(),
                title: experiment.title.to_string(),
                columns,
                is_runtime: true,
                rows,
                scale: options.scale,
            }
        }
        ExperimentKind::PhiSweep {
            spec,
            ks,
            phis,
            report_runtime,
        } => {
            let scaled = spec.scaled(options.scale);
            let dataset = scaled.build(options.seed);
            let columns: Vec<String> = phis.iter().map(|p| format!("phi={p}")).collect();
            let mut rows = Vec::new();
            for &k in ks {
                let measurements = phis
                    .iter()
                    .map(|&phi| {
                        run_averaged(
                            &dataset.space,
                            Algorithm::Eim { phi },
                            k,
                            config,
                            options.repeats,
                        )
                    })
                    .collect();
                rows.push(ResultRow {
                    coordinate: format!("k={k}"),
                    measurements,
                });
            }
            ExperimentResult {
                id: experiment.id.to_string(),
                title: experiment.title.to_string(),
                columns,
                is_runtime: *report_runtime,
                rows,
                scale: options.scale,
            }
        }
    }
}

fn sweep_k(
    experiment: &Experiment,
    spec: &DatasetSpec,
    ks: &[usize],
    is_runtime: bool,
    config: MeasureConfig,
    options: RunOptions,
) -> ExperimentResult {
    let scaled = spec.scaled(options.scale);
    let dataset = scaled.build(options.seed);
    let columns: Vec<String> = Algorithm::paper_trio()
        .iter()
        .map(Algorithm::label)
        .collect();
    let mut rows = Vec::new();
    for &k in ks {
        let measurements = Algorithm::paper_trio()
            .into_iter()
            .map(|a| run_averaged(&dataset.space, a, k, config, options.repeats))
            .collect();
        rows.push(ResultRow {
            coordinate: format!("k={k}"),
            measurements,
        });
    }
    ExperimentResult {
        id: experiment.id.to_string(),
        title: experiment.title.to_string(),
        columns,
        is_runtime,
        rows,
        scale: options.scale,
    }
}

/// Table 1 rendered as an [`ExperimentResult`]: the "measurements" carry the
/// predicted operation counts in place of measured runtimes.
fn theory_result(experiment: &Experiment, options: RunOptions) -> ExperimentResult {
    // Evaluate the formulas at the paper's headline configuration.
    let n = 1_000_000;
    let k = 25;
    let m = options.machines;
    let rows = cost_model::table1(n, k, m, 0.1)
        .into_iter()
        .map(|profile| ResultRow {
            coordinate: profile.name.to_string(),
            measurements: vec![Measurement {
                algorithm: profile.name.to_string(),
                n,
                k,
                value: profile.approximation,
                runtime_seconds: profile.predicted_operations,
                wall_seconds: profile.predicted_operations,
                mapreduce_rounds: match profile.rounds {
                    cost_model::RoundCount::Constant(c) => c as usize,
                    _ => 0,
                },
                fell_back_to_sequential: false,
            }],
        })
        .collect();
    ExperimentResult {
        id: experiment.id.to_string(),
        title: experiment.title.to_string(),
        columns: vec!["alpha / rounds / predicted ops".to_string()],
        is_runtime: false,
        rows,
        scale: options.scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_table_and_figure() {
        let ids: Vec<&str> = all_experiments().iter().map(|e| e.id).collect();
        for expected in [
            "table1", "table2", "table3", "table4", "table5", "table6", "table7", "figure1",
            "figure2a", "figure2b", "figure3a", "figure3b", "figure4a", "figure4b",
        ] {
            assert!(ids.contains(&expected), "missing experiment {expected}");
        }
        assert_eq!(ids.len(), 14);
    }

    #[test]
    fn find_experiment_by_id() {
        assert!(find_experiment("table4").is_some());
        assert!(find_experiment("nonexistent").is_none());
    }

    #[test]
    fn paper_parameters_match_the_evaluation_section() {
        let t2 = find_experiment("table2").unwrap();
        match t2.kind {
            ExperimentKind::SolutionValueVsK { spec, ks } => {
                assert_eq!(
                    spec,
                    DatasetSpec::Gau {
                        n: 1_000_000,
                        k_prime: 25
                    }
                );
                assert_eq!(ks, TABLE_KS.to_vec());
            }
            _ => panic!("table2 must be a solution-value sweep"),
        }
        let t7 = find_experiment("table7").unwrap();
        match t7.kind {
            ExperimentKind::PhiSweep {
                phis,
                report_runtime,
                ..
            } => {
                assert_eq!(phis, PHIS.to_vec());
                assert!(report_runtime);
            }
            _ => panic!("table7 must be a phi sweep"),
        }
        let f4b = find_experiment("figure4b").unwrap();
        match f4b.kind {
            ExperimentKind::RuntimeVsN { specs, k } => {
                assert_eq!(k, 100);
                assert_eq!(specs.len(), FIGURE4_NS.len());
            }
            _ => panic!("figure4b must be an n sweep"),
        }
    }

    #[test]
    fn theory_experiment_reproduces_table1_rows() {
        let exp = find_experiment("table1").unwrap();
        let result = run_experiment(&exp, RunOptions::default());
        assert_eq!(result.rows.len(), 3);
        assert_eq!(result.rows[0].coordinate, "GON");
        assert_eq!(result.rows[1].coordinate, "MRG");
        assert_eq!(result.rows[2].coordinate, "EIM");
        // Approximation factors in the value slot.
        assert_eq!(result.rows[0].measurements[0].value, 2.0);
        assert_eq!(result.rows[1].measurements[0].value, 4.0);
        assert_eq!(result.rows[2].measurements[0].value, 10.0);
    }

    #[test]
    fn tiny_scale_solution_value_sweep_runs_end_to_end() {
        let exp = find_experiment("table3").unwrap();
        let options = RunOptions {
            scale: 0.005,
            machines: 8,
            repeats: 1,
            seed: 2,
        };
        let result = run_experiment(&exp, options);
        assert_eq!(result.columns, vec!["MRG", "EIM", "GON"]);
        assert_eq!(result.rows.len(), TABLE_KS.len());
        for row in &result.rows {
            assert_eq!(row.measurements.len(), 3);
            for m in &row.measurements {
                assert!(m.value.is_finite());
                assert!(m.value >= 0.0);
            }
        }
        // Values decrease (weakly) as k grows, as in every paper table.
        let mrg_values: Vec<f64> = result
            .rows
            .iter()
            .map(|r| r.measurements[0].value)
            .collect();
        for w in mrg_values.windows(2) {
            assert!(
                w[1] <= w[0] * 1.5 + 1e-9,
                "values should broadly decrease with k"
            );
        }
    }

    #[test]
    fn tiny_scale_phi_sweep_runs_end_to_end() {
        let exp = find_experiment("table6").unwrap();
        let options = RunOptions {
            scale: 0.004,
            machines: 8,
            repeats: 1,
            seed: 3,
        };
        let result = run_experiment(&exp, options);
        assert_eq!(result.columns.len(), PHIS.len());
        assert_eq!(result.rows.len(), TABLE_KS.len());
        assert!(!result.is_runtime);
    }

    #[test]
    fn tiny_scale_runtime_vs_n_sweep_runs_end_to_end() {
        let exp = find_experiment("figure4a").unwrap();
        let options = RunOptions {
            scale: 0.002,
            machines: 8,
            repeats: 1,
            seed: 4,
        };
        let result = run_experiment(&exp, options);
        assert!(result.is_runtime);
        assert_eq!(result.rows.len(), FIGURE4_NS.len());
        // The sweep coordinate is n and grows monotonically.
        assert!(result.rows[0].coordinate.starts_with("n="));
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn run_experiment_rejects_bad_scale() {
        let exp = find_experiment("table2").unwrap();
        run_experiment(
            &exp,
            RunOptions {
                scale: 0.0,
                ..Default::default()
            },
        );
    }
}
