//! Scenario-harness round trips (ISSUE 9 satellites): parse → run →
//! serialize → re-parse → self-diff clean; deliberate perturbation fails
//! the gate; running the same spec twice produces bit-identical
//! deterministic metrics.
//!
//! The runner installs process-global dispatch state (kernel backend,
//! assignment arm, thread budget), so every test that runs a scenario
//! takes the shared lock.

use std::sync::Mutex;

use kcenter_bench::scenario::{
    diff_reports, run_scenario, DiffTolerances, ScenarioError, ScenarioReport, ScenarioSpec,
};

static RUN_LOCK: Mutex<()> = Mutex::new(());

/// A small but representative spec: two dataset families (one adversarial,
/// one with planted outliers), two solvers, both precisions, both
/// executors, a non-zero z arm, and one fault-seeded arm — every report
/// column exercised.
const SPEC: &str = r#"
name = "roundtrip"
seed = 11
k = 4
machines = 4
threads = 2
max_attempts = 64

[grid]
solvers = ["gon", "mrg"]
precisions = ["f64", "f32"]
kernels = ["scalar"]
executors = ["simulated", "threads"]
outliers = [0, 5]
faults = ["none", "seed=3"]

[[dataset]]
family = "exp"
n = 300
k_prime = 4

[[dataset]]
family = "gau+out"
n = 300
k_prime = 4
planted = 6
"#;

#[test]
fn parse_run_serialize_reparse_selfdiff_is_clean() {
    let _guard = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let spec = ScenarioSpec::parse(SPEC).unwrap();
    // 2 datasets × (gon: 1 fault arm | mrg: 2) × 2 precisions × 2 executors × 2 z.
    assert_eq!(spec.cells().len(), 2 * 3 * 2 * 2 * 2);

    let report = run_scenario(&spec).unwrap();
    assert_eq!(report.cells.len(), spec.cells().len());

    // Serialize → parse back: structurally identical, radii bit-exact.
    let json = report.to_json();
    let reparsed = ScenarioReport::from_json(&json).unwrap();
    assert_eq!(reparsed, report);

    // Self-diff under the default (exact) tolerances: clean.
    let regressions = diff_reports(&report, &reparsed, &DiffTolerances::default());
    assert!(regressions.is_empty(), "self-diff found: {regressions:?}");

    // Sanity over the columns: z>0 cells improve or hold; coverage is 1.0
    // everywhere (the retry budget drains the injected faults); parallel
    // cells record rounds and simulated time.
    for cell in &report.cells {
        assert!(cell.kept_radius <= cell.radius);
        if cell.z > 0 {
            assert!(cell.kept_radius < cell.radius || cell.radius == 0.0);
        }
        assert_eq!(cell.coverage, 1.0);
        if cell.solver == "mrg" {
            assert!(cell.rounds >= 2);
            assert!(cell.simulated_ns > 0);
        } else {
            assert_eq!(cell.rounds, 0);
        }
        assert_eq!(cell.digest.len(), 16);
    }
}

#[test]
fn same_seed_twice_has_zero_drift() {
    let _guard = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let spec = ScenarioSpec::parse(SPEC).unwrap();
    let first = run_scenario(&spec).unwrap();
    let second = run_scenario(&spec).unwrap();
    // The full diff gate (exact radii, digests, rounds, coverage) passes
    // between two independent runs: zero drift.
    let regressions = diff_reports(&first, &second, &DiffTolerances::default());
    assert!(
        regressions.is_empty(),
        "drift between runs: {regressions:?}"
    );
    // And the deterministic columns are bit-identical cell by cell.
    for (a, b) in first.cells.iter().zip(&second.cells) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.radius.to_bits(), b.radius.to_bits());
        assert_eq!(a.kept_radius.to_bits(), b.kept_radius.to_bits());
    }
}

#[test]
fn fault_seeded_cells_match_their_fault_free_twins() {
    let _guard = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let spec = ScenarioSpec::parse(SPEC).unwrap();
    let report = run_scenario(&spec).unwrap();
    // With a generous retry budget, a fault-seeded mrg cell must land on
    // the same digest as its fault-free twin (same id apart from the
    // fault suffix).
    let mut checked = 0;
    for cell in report.cells.iter().filter(|c| c.fault != "none") {
        let twin_id = cell.id.replace("/seed=3", "/none");
        let twin = report
            .cells
            .iter()
            .find(|c| c.id == twin_id)
            .expect("fault-free twin exists");
        assert_eq!(cell.digest, twin.digest, "{}", cell.id);
        assert_eq!(cell.radius.to_bits(), twin.radius.to_bits());
        checked += 1;
    }
    assert!(checked >= 8, "expected fault-seeded cells, got {checked}");
}

#[test]
fn perturbed_report_fails_the_gate() {
    let _guard = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // A tiny single-cell scenario keeps this fast.
    let spec = ScenarioSpec::parse(
        "name = \"tiny\"\nseed = 5\nk = 3\n[[dataset]]\nfamily = \"gau\"\nn = 150\nk_prime = 3\n",
    )
    .unwrap();
    let baseline = run_scenario(&spec).unwrap();

    // Radius drift beyond tolerance.
    let mut perturbed = baseline.clone();
    perturbed.cells[0].radius += 1e-9;
    let regressions = diff_reports(&baseline, &perturbed, &DiffTolerances::default());
    assert!(
        regressions.iter().any(|r| r.contains("radius drifted")),
        "{regressions:?}"
    );
    // ...but an explicit tolerance admits it.
    let tol = DiffTolerances {
        radius: 1e-6,
        ..DiffTolerances::default()
    };
    let lenient: Vec<String> = diff_reports(&baseline, &perturbed, &tol);
    assert!(lenient.is_empty(), "{lenient:?}");

    // Digest drift is never tolerated.
    let mut perturbed = baseline.clone();
    perturbed.cells[0].digest = "0000000000000000".to_string();
    assert!(diff_reports(&baseline, &perturbed, &tol)
        .iter()
        .any(|r| r.contains("digest")));

    // A disappeared cell fails both directions.
    let mut emptied = baseline.clone();
    emptied.cells.clear();
    assert!(diff_reports(&baseline, &emptied, &tol)
        .iter()
        .any(|r| r.contains("disappeared")));
    assert!(diff_reports(&emptied, &baseline, &tol)
        .iter()
        .any(|r| r.contains("not in baseline")));

    // Timing regressions only fire when a tolerance is requested.
    let mut slower = baseline.clone();
    slower.cells[0].wall_ns = baseline.cells[0].wall_ns * 100 + 1;
    assert!(diff_reports(&baseline, &slower, &DiffTolerances::default()).is_empty());
    let wall_gated = DiffTolerances {
        wall_frac: Some(0.5),
        ..DiffTolerances::default()
    };
    assert!(diff_reports(&baseline, &slower, &wall_gated)
        .iter()
        .any(|r| r.contains("wall time regressed")));
}

#[test]
fn json_spec_runs_identically_to_toml() {
    let _guard = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let toml = "name = \"mini\"\nseed = 9\nk = 2\n[grid]\nkernels = [\"scalar\"]\n[[dataset]]\nfamily = \"dup\"\nn = 100\ndistinct = 4\n";
    let json = r#"{"name": "mini", "seed": 9, "k": 2,
        "grid": {"kernels": ["scalar"]},
        "datasets": [{"family": "dup", "n": 100, "distinct": 4}]}"#;
    let a = run_scenario(&ScenarioSpec::parse(toml).unwrap()).unwrap();
    let b = run_scenario(&ScenarioSpec::parse(json).unwrap()).unwrap();
    assert_eq!(a.cells[0].digest, b.cells[0].digest);
    assert_eq!(a.cells[0].radius.to_bits(), b.cells[0].radius.to_bits());
}

#[test]
fn manhattan_cells_run_and_are_distinct_from_euclidean() {
    let _guard = RUN_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // The non-Euclidean arm end to end: both distances through the same
    // grid; the L1 geometry must change the certified radius (and is
    // itself deterministic — equal-id cells in one report are one run,
    // so assert across the axis instead).
    let spec = ScenarioSpec::parse(
        "name = \"l1\"\nseed = 21\nk = 4\n[grid]\nkernels = [\"scalar\"]\ndistances = [\"euclidean\", \"manhattan\"]\n[[dataset]]\nfamily = \"gau\"\nn = 400\nk_prime = 4\n",
    )
    .unwrap();
    let report = run_scenario(&spec).unwrap();
    assert_eq!(report.cells.len(), 2);
    let l2 = &report.cells[0];
    let l1 = &report.cells[1];
    assert!(l2.id.contains("/euclidean/") && l1.id.contains("/manhattan/"));
    assert!(
        l1.radius >= l2.radius,
        "L1 ≥ L2 pointwise, so the certified radius cannot shrink"
    );
    assert_ne!(l1.radius.to_bits(), l2.radius.to_bits());
}

#[test]
fn malformed_specs_and_reports_name_their_errors() {
    // Spec side: missing name.
    let err = ScenarioSpec::parse("k = 2\n[[dataset]]\nfamily = \"gau\"\nn = 10\n").unwrap_err();
    assert!(matches!(err, ScenarioError::Missing { ref what } if what == "name"));

    // Report side: truncated JSON carries the byte offset.
    let err = ScenarioReport::from_json("{\"scenario\": \"x\", ").unwrap_err();
    assert!(matches!(err, ScenarioError::Json { .. }), "{err}");

    // Report side: structurally valid JSON missing the cells array.
    let err =
        ScenarioReport::from_json("{\"scenario\": \"x\", \"seed\": 1, \"k\": 2}").unwrap_err();
    assert!(matches!(err, ScenarioError::Missing { ref what } if what == "cells"));

    // Display is informative.
    assert!(format!("{err}").contains("cells"));
}
