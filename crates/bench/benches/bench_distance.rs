//! Substrate micro-benchmark: raw distance evaluations and covering-radius
//! scans, the primitives every algorithm round is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcenter_core::evaluate::covering_radius;
use kcenter_data::{DatasetSpec, PointGenerator, UnifGenerator};
use kcenter_metric::{Distance, Euclidean, Manhattan, MetricSpace, VecSpace};
use std::hint::black_box;

fn bench_pairwise_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance/pairwise");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for dim in [2usize, 10, 38] {
        let g = UnifGenerator::with_dim_and_side(2, dim, 1000.0);
        let pts = g.generate(1);
        group.bench_with_input(BenchmarkId::new("euclidean", dim), &dim, |b, _| {
            b.iter(|| black_box(Euclidean.distance(&pts[0], &pts[1])))
        });
        group.bench_with_input(BenchmarkId::new("manhattan", dim), &dim, |b, _| {
            b.iter(|| black_box(Manhattan.distance(&pts[0], &pts[1])))
        });
    }
    group.finish();
}

fn bench_covering_radius(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance/covering_radius");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for n in [1_000usize, 10_000, 50_000] {
        let space = VecSpace::from_flat(DatasetSpec::Gau { n, k_prime: 10 }.generate_flat(7));
        let centers: Vec<usize> = (0..10).map(|i| i * (n / 10)).collect();
        group.bench_with_input(BenchmarkId::new("10_centers", n), &n, |b, _| {
            b.iter(|| black_box(covering_radius(&space, &centers)))
        });
    }
    group.finish();
}

fn bench_distance_to_set(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance/distance_to_set");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let space = VecSpace::from_flat(DatasetSpec::Unif { n: 10_000 }.generate_flat(3));
    for set_size in [1usize, 10, 100] {
        let centers: Vec<usize> = (0..set_size).collect();
        group.bench_with_input(BenchmarkId::from_parameter(set_size), &set_size, |b, _| {
            b.iter(|| black_box(space.distance_to_set(9_999, &centers)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pairwise_distance,
    bench_covering_radius,
    bench_distance_to_set
);
criterion_main!(benches);
