//! Flat SoA layout vs the old pointer-chasing `Vec<Point>` layout on the
//! hot nearest-center scan (one Gonzalez iteration: relax + argmax).
//!
//! Grid: n ∈ {10k, 100k, 1M} × d ∈ {2, 16}, plus the chunked-parallel flat
//! variant and the `f32`-storage rows (same seed, half the bytes per
//! coordinate).  `cargo run --release -p kcenter-bench --bin flat_report`
//! produces the committed `BENCH_flat.json` from the same scan code.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kcenter_bench::flatbench::{flat_iteration, flat_par_iteration, old_iteration};
use kcenter_data::{PointGenerator, UnifGenerator};
use kcenter_metric::VecSpace;

const SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];
const DIMS: [usize; 2] = [2, 16];

fn bench_nearest_center_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat/nearest_center_scan");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &dim in &DIMS {
        for &n in &SIZES {
            let generator = UnifGenerator::with_dim_and_side(n, dim, 1000.0);
            let flat = generator.generate_flat(42);
            let flat32 = generator.generate_flat_at::<f32>(42);
            let points = flat.to_points();
            let space = VecSpace::from_flat(flat);
            let space32 = VecSpace::from_flat(flat32);
            let label = format!("n{n}_d{dim}");

            group.bench_with_input(BenchmarkId::new("old_vec_point", &label), &n, |b, _| {
                let mut nearest = vec![f64::INFINITY; n];
                b.iter(|| black_box(old_iteration(&points, 0, &mut nearest)))
            });
            group.bench_with_input(BenchmarkId::new("flat", &label), &n, |b, _| {
                let mut nearest = vec![f64::INFINITY; n];
                b.iter(|| black_box(flat_iteration(&space, 0, &mut nearest)))
            });
            group.bench_with_input(BenchmarkId::new("flat_par", &label), &n, |b, _| {
                let mut nearest = vec![f64::INFINITY; n];
                b.iter(|| black_box(flat_par_iteration(&space, 0, &mut nearest)))
            });
            group.bench_with_input(BenchmarkId::new("flat_f32", &label), &n, |b, _| {
                let mut nearest = vec![f32::INFINITY; n];
                b.iter(|| black_box(flat_iteration(&space32, 0, &mut nearest)))
            });
            group.bench_with_input(BenchmarkId::new("flat_f32_par", &label), &n, |b, _| {
                let mut nearest = vec![f32::INFINITY; n];
                b.iter(|| black_box(flat_par_iteration(&space32, 0, &mut nearest)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_nearest_center_scan);
criterion_main!(benches);
