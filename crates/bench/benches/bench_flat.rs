//! Flat SoA layout vs the old pointer-chasing `Vec<Point>` layout on the
//! hot nearest-center scan (one Gonzalez iteration: relax + argmax).
//!
//! Grid: n ∈ {10k, 100k, 1M} × d ∈ {2, 16}, plus the chunked-parallel flat
//! variant and the `f32`-storage rows (same seed, half the bytes per
//! coordinate).  `cargo run --release -p kcenter-bench --bin flat_report`
//! produces the committed `BENCH_flat.json` from the same scan code.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use kcenter_bench::flatbench::{
    clustered_flat, dense_assign_scan, dense_relax_rounds, flat_iteration_under,
    flat_par_iteration, gonzalez_centers, grid_assign_scan, grid_relax_rounds, old_iteration,
};
use kcenter_core::coreset::GonzalezCoresetConfig;
use kcenter_core::prelude::*;
use kcenter_data::{DatasetSpec, PointGenerator, UnifGenerator};
use kcenter_metric::kernel::simd;
use kcenter_metric::{KernelBackend, KernelChoice, VecSpace};

const SIZES: [usize; 3] = [10_000, 100_000, 1_000_000];
const DIMS: [usize; 2] = [2, 16];

fn bench_nearest_center_scan(c: &mut Criterion) {
    // The `flat*` rows pin the scalar kernels; the `*_simd` rows use
    // whatever KCENTER_KERNEL resolves to (auto by default) — same A/B as
    // the `flat_report` binary / BENCH_flat.json.
    let simd_kernel = KernelChoice::from_env()
        .and_then(KernelChoice::resolve)
        .expect("KCENTER_KERNEL resolves");
    let mut group = c.benchmark_group("flat/nearest_center_scan");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &dim in &DIMS {
        for &n in &SIZES {
            let generator = UnifGenerator::with_dim_and_side(n, dim, 1000.0);
            let flat = generator.generate_flat(42);
            let flat32 = generator.generate_flat_at::<f32>(42);
            let points = flat.to_points();
            let space = VecSpace::from_flat(flat);
            let space32 = VecSpace::from_flat(flat32);
            let label = format!("n{n}_d{dim}");

            group.bench_with_input(BenchmarkId::new("old_vec_point", &label), &n, |b, _| {
                let mut nearest = vec![f64::INFINITY; n];
                b.iter(|| black_box(old_iteration(&points, 0, &mut nearest)))
            });
            group.bench_with_input(BenchmarkId::new("flat", &label), &n, |b, _| {
                let mut nearest = vec![f64::INFINITY; n];
                b.iter(|| {
                    black_box(flat_iteration_under(
                        KernelBackend::Scalar,
                        &space,
                        0,
                        &mut nearest,
                    ))
                })
            });
            group.bench_with_input(BenchmarkId::new("flat_par", &label), &n, |b, _| {
                simd::set_active(KernelBackend::Scalar).unwrap();
                let mut nearest = vec![f64::INFINITY; n];
                b.iter(|| black_box(flat_par_iteration(&space, 0, &mut nearest)))
            });
            group.bench_with_input(BenchmarkId::new("flat_f32", &label), &n, |b, _| {
                let mut nearest = vec![f32::INFINITY; n];
                b.iter(|| {
                    black_box(flat_iteration_under(
                        KernelBackend::Scalar,
                        &space32,
                        0,
                        &mut nearest,
                    ))
                })
            });
            group.bench_with_input(BenchmarkId::new("flat_f32_par", &label), &n, |b, _| {
                simd::set_active(KernelBackend::Scalar).unwrap();
                let mut nearest = vec![f32::INFINITY; n];
                b.iter(|| black_box(flat_par_iteration(&space32, 0, &mut nearest)))
            });
            group.bench_with_input(BenchmarkId::new("flat_simd", &label), &n, |b, _| {
                let mut nearest = vec![f64::INFINITY; n];
                b.iter(|| black_box(flat_iteration_under(simd_kernel, &space, 0, &mut nearest)))
            });
            group.bench_with_input(BenchmarkId::new("flat_f32_simd", &label), &n, |b, _| {
                let mut nearest = vec![f32::INFINITY; n];
                b.iter(|| black_box(flat_iteration_under(simd_kernel, &space32, 0, &mut nearest)))
            });
        }
    }
    group.finish();
}

/// Grid-vs-dense assignment arms (`--assign`) at reduced scale: the
/// k-round relax loop and the k-candidate assignment scan, dense flat
/// kernels vs the spatial grid, across the bucketing dimension range.
/// `flat_report` measures the same arms at n = 1M and derives the
/// `AssignChoice::Auto` crossover recorded in `BENCH_flat.json`.
fn bench_assignment_arms(c: &mut Criterion) {
    let simd_kernel = KernelChoice::from_env()
        .and_then(KernelChoice::resolve)
        .expect("KCENTER_KERNEL resolves");
    simd::set_active(simd_kernel).unwrap();
    let n = 200_000;
    let k = 50;
    let mut group = c.benchmark_group("flat/assignment_arms");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for &dim in &[2usize, 4, 8, 16] {
        let space = VecSpace::from_flat(clustered_flat::<f64>(n, dim, 25, 42));
        let members: Vec<usize> = (0..n).collect();
        let centers = gonzalez_centers(&space, k);
        let label = format!("n{n}_d{dim}_k{k}");

        group.bench_with_input(BenchmarkId::new("relax_dense", &label), &n, |b, _| {
            let mut nearest = vec![f64::INFINITY; n];
            b.iter(|| {
                nearest.fill(f64::INFINITY);
                black_box(dense_relax_rounds(&space, &centers, &mut nearest))
            })
        });
        group.bench_with_input(BenchmarkId::new("relax_grid", &label), &n, |b, _| {
            let mut nearest = vec![f64::INFINITY; n];
            b.iter(|| {
                nearest.fill(f64::INFINITY);
                black_box(
                    grid_relax_rounds(&space, &members, &centers, &mut nearest)
                        .expect("clustered instance buckets fine"),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("assign_dense", &label), &n, |b, _| {
            b.iter(|| black_box(dense_assign_scan(&space, &centers)))
        });
        group.bench_with_input(BenchmarkId::new("assign_grid", &label), &n, |b, _| {
            b.iter(|| {
                black_box(grid_assign_scan(&space, &centers).expect("center set buckets fine"))
            })
        });
    }
    group.finish();
}

/// The sweep amortisation at reduced scale: one grid cell solved on a
/// prebuilt weighted coreset vs a from-scratch EIM rerun on the full data.
/// The build cost itself is measured separately so all three components of
/// the trade-off (build once, solve many, rerun many) are tracked.
fn bench_sweep_via_coreset(c: &mut Criterion) {
    let spec = DatasetSpec::Gau {
        n: 20_000,
        k_prime: 10,
    };
    let dataset = spec.build(42);
    let space = &dataset.space;
    let coreset = GonzalezCoresetConfig::new(200)
        .with_machines(10)
        .build(space)
        .expect("coreset build");

    let mut group = c.benchmark_group("flat/sweep_via_coreset");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    group.bench_function("coreset_build_t200", |b| {
        b.iter(|| {
            black_box(
                GonzalezCoresetConfig::new(200)
                    .with_machines(10)
                    .build(space)
                    .expect("coreset build"),
            )
        })
    });
    group.bench_function("coreset_solve_k10", |b| {
        b.iter(|| {
            black_box(
                coreset
                    .solve(10, SequentialSolver::Gonzalez, FirstCenter::default())
                    .expect("coreset solve"),
            )
        })
    });
    group.bench_function("eim_rerun_k10", |b| {
        b.iter(|| {
            black_box(
                EimConfig::new(10)
                    .with_machines(10)
                    .with_epsilon(0.13)
                    .with_seed(42)
                    .run(space)
                    .expect("EIM rerun"),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_nearest_center_scan,
    bench_assignment_arms,
    bench_sweep_via_coreset
);
criterion_main!(benches);
