//! GON baseline: runtime is Θ(k·n), plus the sequential-vs-parallel inner
//! scan ablation called out in DESIGN.md §8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcenter_core::prelude::*;
use kcenter_data::DatasetSpec;
use kcenter_metric::VecSpace;
use std::hint::black_box;

fn bench_gonzalez_scaling_in_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("gonzalez/scaling_n");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    for n in [2_000usize, 10_000, 50_000] {
        let space = VecSpace::from_flat(DatasetSpec::Unif { n }.generate_flat(1));
        group.bench_with_input(BenchmarkId::new("k10", n), &n, |b, _| {
            b.iter(|| black_box(GonzalezConfig::new(10).solve(&space).unwrap()))
        });
    }
    group.finish();
}

fn bench_gonzalez_scaling_in_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("gonzalez/scaling_k");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let space = VecSpace::from_flat(
        DatasetSpec::Gau {
            n: 20_000,
            k_prime: 25,
        }
        .generate_flat(2),
    );
    for k in [2usize, 10, 50, 100] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| black_box(GonzalezConfig::new(k).solve(&space).unwrap()))
        });
    }
    group.finish();
}

fn bench_parallel_scan_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("gonzalez/parallel_scan_ablation");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let space = VecSpace::from_flat(DatasetSpec::Unif { n: 100_000 }.generate_flat(3));
    group.bench_function("sequential_scan", |b| {
        b.iter(|| black_box(GonzalezConfig::new(25).solve(&space).unwrap()))
    });
    group.bench_function("rayon_scan", |b| {
        b.iter(|| {
            black_box(
                GonzalezConfig::new(25)
                    .with_parallel_scan(true)
                    .solve(&space)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_gonzalez_scaling_in_n,
    bench_gonzalez_scaling_in_k,
    bench_parallel_scan_ablation
);
criterion_main!(benches);
