//! Scaled-down versions of the paper's runtime figures, exercised through
//! the same experiment harness the `repro` binary uses.
//!
//! Figure 2 (runtime vs k), Figure 3 (runtime vs k with the EIM fallback),
//! and Figure 4 (runtime vs n) are each represented by one benchmark group;
//! the full-scale series are produced by `repro figure2a ... --scale 1.0`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcenter_bench::experiments::{find_experiment, run_experiment, RunOptions};
use kcenter_bench::measure::{run, Algorithm, MeasureConfig};
use kcenter_data::DatasetSpec;
use kcenter_metric::VecSpace;
use std::hint::black_box;

const SCALE: f64 = 0.01;

fn options() -> RunOptions {
    RunOptions {
        scale: SCALE,
        machines: 50,
        repeats: 1,
        seed: 1,
    }
}

fn bench_figure2_runtime_vs_k(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/figure2_runtime_vs_k");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    // GAU workload of Figure 2a at reduced scale.
    let space = VecSpace::from_flat(
        DatasetSpec::Gau {
            n: 1_000_000,
            k_prime: 25,
        }
        .scaled(SCALE)
        .generate_flat(1),
    );
    let config = MeasureConfig {
        machines: 50,
        seed: 1,
        epsilon: 0.1,
    };
    for k in [10usize, 100] {
        for algo in Algorithm::paper_trio() {
            group.bench_with_input(BenchmarkId::new(algo.label(), k), &k, |b, &k| {
                b.iter(|| black_box(run(&space, algo, k, config)))
            });
        }
    }
    group.finish();
}

fn bench_figure4_runtime_vs_n(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures/figure4_runtime_vs_n");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let config = MeasureConfig {
        machines: 50,
        seed: 1,
        epsilon: 0.1,
    };
    for n in [10_000usize, 50_000] {
        let space = VecSpace::from_flat(DatasetSpec::Unif { n }.generate_flat(2));
        for algo in Algorithm::paper_trio() {
            group.bench_with_input(BenchmarkId::new(algo.label(), n), &n, |b, _| {
                b.iter(|| black_box(run(&space, algo, 10, config)))
            });
        }
    }
    group.finish();
}

fn bench_full_experiment_harness(c: &mut Criterion) {
    // One end-to-end experiment through the registry, to keep the harness
    // itself under benchmark (catching regressions in the orchestration).
    let mut group = c.benchmark_group("figures/harness_end_to_end");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let exp = find_experiment("table3").expect("table3 is registered");
    group.bench_function("table3_at_1_percent_scale", |b| {
        b.iter(|| black_box(run_experiment(&exp, options())))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_figure2_runtime_vs_k,
    bench_figure4_runtime_vs_n,
    bench_full_experiment_harness
);
criterion_main!(benches);
