//! EIM: the sampling loop vs the sequential baseline and the fallback
//! behaviour when k is large relative to n (Figures 3b / 4b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcenter_core::prelude::*;
use kcenter_data::DatasetSpec;
use kcenter_metric::VecSpace;
use std::hint::black_box;

/// ε close to 1/ln n minimises the sampling threshold, so sampling actually
/// happens at bench scale.
const BENCH_EPSILON: f64 = 0.12;

fn bench_eim_vs_gon(c: &mut Criterion) {
    let mut group = c.benchmark_group("eim/vs_gon");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let space = VecSpace::from_flat(
        DatasetSpec::Gau {
            n: 30_000,
            k_prime: 25,
        }
        .generate_flat(1),
    );
    for k in [2usize, 5] {
        group.bench_with_input(BenchmarkId::new("eim_sampling", k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    EimConfig::new(k)
                        .with_machines(50)
                        .with_epsilon(BENCH_EPSILON)
                        .with_seed(1)
                        .run(&space)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("gon", k), &k, |b, &k| {
            b.iter(|| black_box(GonzalezConfig::new(k).solve(&space).unwrap()))
        });
    }
    group.finish();
}

fn bench_eim_fallback_regime(c: &mut Criterion) {
    let mut group = c.benchmark_group("eim/fallback_when_k_large");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let space = VecSpace::from_flat(
        DatasetSpec::Gau {
            n: 10_000,
            k_prime: 50,
        }
        .generate_flat(2),
    );
    // With k = 100 the threshold exceeds n, so EIM degenerates to GON on the
    // whole input (the Figure 3b / 4b regime).
    group.bench_function("eim_k100_fallback", |b| {
        b.iter(|| {
            black_box(
                EimConfig::new(100)
                    .with_machines(50)
                    .with_seed(2)
                    .run(&space)
                    .unwrap(),
            )
        })
    });
    group.bench_function("gon_k100", |b| {
        b.iter(|| black_box(GonzalezConfig::new(100).solve(&space).unwrap()))
    });
    group.finish();
}

fn bench_eim_machine_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("eim/machine_count");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let space = VecSpace::from_flat(DatasetSpec::Unif { n: 30_000 }.generate_flat(3));
    for m in [8usize, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                black_box(
                    EimConfig::new(2)
                        .with_machines(m)
                        .with_epsilon(BENCH_EPSILON)
                        .with_seed(3)
                        .run(&space)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_eim_vs_gon,
    bench_eim_fallback_regime,
    bench_eim_machine_count
);
criterion_main!(benches);
