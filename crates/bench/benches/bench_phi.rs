//! The φ trade-off of Tables 6 and 7: lowering φ below the guarantee
//! threshold (5.15) speeds EIM up substantially while keeping solution
//! values acceptable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcenter_core::prelude::*;
use kcenter_data::DatasetSpec;
use kcenter_metric::VecSpace;
use std::hint::black_box;

fn bench_phi_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("eim/phi_sweep");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    // A scaled-down Table 6/7 workload (GAU with k' = 25 inherent clusters).
    let space = VecSpace::from_flat(
        DatasetSpec::Gau {
            n: 30_000,
            k_prime: 25,
        }
        .generate_flat(1),
    );
    for phi in [1.0f64, 4.0, 6.0, 8.0] {
        group.bench_with_input(BenchmarkId::from_parameter(phi), &phi, |b, &phi| {
            b.iter(|| {
                black_box(
                    EimConfig::new(5)
                        .with_machines(50)
                        .with_epsilon(0.12)
                        .with_phi(phi)
                        .with_seed(1)
                        .run(&space)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_phi_effect_on_sample_size(c: &mut Criterion) {
    // Not a timing benchmark per se: measures the end-to-end run while the
    // per-iteration pivot depth varies, which is what Table 7 reports.
    let mut group = c.benchmark_group("eim/phi_with_larger_k");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let space = VecSpace::from_flat(
        DatasetSpec::Gau {
            n: 30_000,
            k_prime: 25,
        }
        .generate_flat(2),
    );
    for phi in [1.0f64, 8.0] {
        group.bench_with_input(BenchmarkId::from_parameter(phi), &phi, |b, &phi| {
            b.iter(|| {
                black_box(
                    EimConfig::new(2)
                        .with_machines(50)
                        .with_epsilon(0.12)
                        .with_phi(phi)
                        .with_seed(2)
                        .run(&space)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_phi_sweep, bench_phi_effect_on_sample_size);
criterion_main!(benches);
