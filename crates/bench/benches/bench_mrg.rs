//! MRG: two-round runtime vs the sequential baseline, the forced
//! multi-round ablation, and the GON vs Hochbaum–Shmoys sub-procedure
//! ablation (DESIGN.md §8).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use kcenter_core::prelude::*;
use kcenter_data::DatasetSpec;
use kcenter_metric::{MetricSpace, VecSpace};
use std::hint::black_box;

fn bench_mrg_vs_gon(c: &mut Criterion) {
    let mut group = c.benchmark_group("mrg/vs_gon");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let space = VecSpace::from_flat(
        DatasetSpec::Gau {
            n: 50_000,
            k_prime: 25,
        }
        .generate_flat(1),
    );
    for k in [10usize, 25] {
        group.bench_with_input(BenchmarkId::new("mrg_50_machines", k), &k, |b, &k| {
            b.iter(|| {
                black_box(
                    MrgConfig::new(k)
                        .with_machines(50)
                        .with_unchecked_capacity()
                        .run(&space)
                        .unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("gon", k), &k, |b, &k| {
            b.iter(|| black_box(GonzalezConfig::new(k).solve(&space).unwrap()))
        });
    }
    group.finish();
}

fn bench_mrg_machine_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("mrg/machine_count");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let space = VecSpace::from_flat(DatasetSpec::Unif { n: 50_000 }.generate_flat(2));
    for m in [1usize, 8, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(m), &m, |b, &m| {
            b.iter(|| {
                black_box(
                    MrgConfig::new(25)
                        .with_machines(m)
                        .with_unchecked_capacity()
                        .run(&space)
                        .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_mrg_forced_multi_round(c: &mut Criterion) {
    let mut group = c.benchmark_group("mrg/forced_multi_round");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let space = VecSpace::from_flat(
        DatasetSpec::Gau {
            n: 20_000,
            k_prime: 10,
        }
        .generate_flat(3),
    );
    // Two-round capacity vs a capacity small enough to force a third round.
    group.bench_function("two_round", |b| {
        b.iter(|| {
            black_box(
                MrgConfig::new(10)
                    .with_machines(40)
                    .with_capacity(space.len() / 40 + 10 * 40)
                    .run(&space)
                    .unwrap(),
            )
        })
    });
    group.bench_function("multi_round_small_capacity", |b| {
        b.iter(|| {
            black_box(
                MrgConfig::new(10)
                    .with_machines(40)
                    .with_capacity(space.len() / 40 + 50)
                    .run(&space)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_final_solver_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("mrg/final_solver");
    group.warm_up_time(std::time::Duration::from_millis(400));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.sample_size(10);
    let space = VecSpace::from_flat(
        DatasetSpec::Gau {
            n: 20_000,
            k_prime: 25,
        }
        .generate_flat(4),
    );
    group.bench_function("gonzalez_final", |b| {
        b.iter(|| {
            black_box(
                MrgConfig::new(25)
                    .with_machines(50)
                    .with_unchecked_capacity()
                    .with_solver(SequentialSolver::Gonzalez)
                    .run(&space)
                    .unwrap(),
            )
        })
    });
    group.bench_function("hochbaum_shmoys_final", |b| {
        b.iter(|| {
            black_box(
                MrgConfig::new(25)
                    .with_machines(50)
                    .with_unchecked_capacity()
                    .with_solver(SequentialSolver::HochbaumShmoys)
                    .run(&space)
                    .unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_mrg_vs_gon,
    bench_mrg_machine_count,
    bench_mrg_forced_multi_round,
    bench_final_solver_ablation
);
criterion_main!(benches);
