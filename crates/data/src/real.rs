//! Surrogates for the paper's real (UCI) data sets.
//!
//! The paper evaluates on UCI Machine Learning Repository data sets, and
//! reports numbers for two of them:
//!
//! * the **Poker Hand** training set — 25,010 rows, each a hand of five
//!   cards encoded as 10 ordinal attributes (suit 1–4 and rank 1–13 per
//!   card), naively embedded in `R^10` with the Euclidean metric;
//! * the **KDD Cup 1999** 10 % sample — roughly 494 k network-connection
//!   records dominated by a few enormous traffic classes (`smurf`,
//!   `neptune`, `normal`) with heavy-tailed numeric features.
//!
//! We do not ship UCI files, so this module provides deterministic seeded
//! *surrogates* with the same schema and the same qualitative geometry (see
//! `DESIGN.md` §5 for the substitution argument).  They can be swapped for
//! the genuine files through [`crate::csv::load_points`] without touching
//! any algorithm code.

use crate::rng::{derive_seed, normal, power_law, seeded, weighted_choice};
use crate::{CoordSink, PointGenerator};
use kcenter_metric::{FlatPoints, Scalar};
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Number of rows in the UCI Poker Hand training set.
pub const POKER_HAND_TRAINING_ROWS: usize = 25_010;

/// Number of rows in the KDD Cup 1999 10 % sample (approximately).
pub const KDD_CUP_10PCT_ROWS: usize = 494_021;

/// Surrogate for the Poker Hand training set: random poker deals encoded
/// exactly like the UCI file (5 × (suit ∈ {1..4}, rank ∈ {1..13})).
///
/// The geometry that matters for k-center — a low-cardinality integer grid
/// with no inherent cluster structure and a bounded diameter — is fully
/// determined by the schema, so random deals reproduce the qualitative
/// behaviour of Table 5 in the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PokerHandSim {
    n: usize,
}

impl PokerHandSim {
    /// Surrogate with the UCI training-set row count (25,010).
    pub fn new() -> Self {
        Self {
            n: POKER_HAND_TRAINING_ROWS,
        }
    }

    /// Surrogate with a custom number of rows (useful for fast tests).
    pub fn with_rows(n: usize) -> Self {
        Self { n }
    }
}

impl Default for PokerHandSim {
    fn default() -> Self {
        Self::new()
    }
}

impl PointGenerator for PokerHandSim {
    fn generate_flat_at<S: Scalar>(&self, seed: u64) -> FlatPoints<S> {
        const CHUNK: usize = 8_192;
        let chunks = self.n.div_ceil(CHUNK.max(1));
        let coords: Vec<S> = (0..chunks)
            .into_par_iter()
            .flat_map_iter(|chunk| {
                let start = chunk * CHUNK;
                let len = CHUNK.min(self.n - start);
                let mut rng = seeded(derive_seed(seed, chunk as u64));
                let mut block = CoordSink::with_capacity(len * 10);
                for _ in 0..len {
                    // Five cards drawn without replacement from a 52-card
                    // deck, encoded as (suit, rank) pairs like the UCI file.
                    let mut deck: Vec<u8> = (0..52).collect();
                    for _ in 0..5 {
                        let idx = rng.gen_range(0..deck.len());
                        let card = deck.swap_remove(idx);
                        let suit = (card / 13) + 1; // 1..=4
                        let rank = (card % 13) + 1; // 1..=13
                        block.push(suit as f64);
                        block.push(rank as f64);
                    }
                }
                block.into_coords()
            })
            .collect();
        FlatPoints::from_coords(coords, if self.n == 0 { 0 } else { 10 })
            .expect("poker surrogate emits finite coordinates")
    }

    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        10
    }

    fn name(&self) -> String {
        format!("POKER-HAND-SIM(n={})", self.n)
    }
}

/// Traffic-class profile used by the KDD Cup surrogate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct TrafficClass {
    /// Relative share of the rows belonging to this class.
    weight: f64,
    /// Mean feature vector scale of the class (per-dimension mean is drawn
    /// once per class from this scale).
    scale: f64,
    /// Within-class standard deviation relative to the scale.
    spread: f64,
}

/// Surrogate for the KDD Cup 1999 10 % sample.
///
/// The real sample is dominated by three enormous traffic classes (`smurf`
/// ~57 %, `neptune` ~22 %, `normal` ~20 %) plus a long tail of tiny attack
/// classes, with numeric features spanning many orders of magnitude.  The
/// surrogate reproduces exactly that shape: a handful of huge dense clusters,
/// a long tail of tiny ones, and heavy-tailed feature magnitudes.  This
/// extreme imbalance is what drives the qualitative behaviour of Figure 1
/// (objective collapsing once k exceeds the number of dominant classes, and
/// the sampling algorithm struggling relative to the synthetic data sets).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KddCupSim {
    n: usize,
    dim: usize,
    classes: Vec<TrafficClass>,
}

impl KddCupSim {
    /// Full-size surrogate (~494k rows, 38 numeric dimensions).
    pub fn new() -> Self {
        Self::with_rows(KDD_CUP_10PCT_ROWS)
    }

    /// Surrogate with a custom row count (the class mix is preserved).
    pub fn with_rows(n: usize) -> Self {
        // Class shares modelled on the published composition of the 10 % sample.
        let classes = vec![
            TrafficClass {
                weight: 0.57,
                scale: 500.0,
                spread: 0.02,
            }, // smurf-like
            TrafficClass {
                weight: 0.22,
                scale: 2_000.0,
                spread: 0.02,
            }, // neptune-like
            TrafficClass {
                weight: 0.19,
                scale: 8_000.0,
                spread: 0.10,
            }, // normal-like
            TrafficClass {
                weight: 0.01,
                scale: 30_000.0,
                spread: 0.20,
            }, // satan/ipsweep-like
            TrafficClass {
                weight: 0.005,
                scale: 80_000.0,
                spread: 0.25,
            }, // portsweep-like
            TrafficClass {
                weight: 0.003,
                scale: 200_000.0,
                spread: 0.30,
            }, // rare attacks
            TrafficClass {
                weight: 0.002,
                scale: 600_000.0,
                spread: 0.40,
            }, // rarest / outliers
        ];
        Self {
            n,
            dim: 38,
            classes,
        }
    }

    /// Number of distinct traffic classes in the surrogate mixture.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
}

impl Default for KddCupSim {
    fn default() -> Self {
        Self::new()
    }
}

impl PointGenerator for KddCupSim {
    fn generate_flat_at<S: Scalar>(&self, seed: u64) -> FlatPoints<S> {
        // Per-class per-dimension means are drawn once so every class forms a
        // dense cluster; the heavy-tailed magnitudes come from the power-law
        // scale of the rare classes.
        let mut class_rng = seeded(derive_seed(seed, u64::MAX - 1));
        let class_means: Vec<Vec<f64>> = self
            .classes
            .iter()
            .map(|c| {
                (0..self.dim)
                    .map(|_| power_law(&mut class_rng, 1.0, c.scale.max(2.0), 1.8))
                    .collect()
            })
            .collect();
        let weights: Vec<f64> = self.classes.iter().map(|c| c.weight).collect();

        const CHUNK: usize = 16_384;
        let chunks = self.n.div_ceil(CHUNK.max(1));
        let dim = self.dim;
        let coords: Vec<S> = (0..chunks)
            .into_par_iter()
            .flat_map_iter(|chunk| {
                let start = chunk * CHUNK;
                let len = CHUNK.min(self.n - start);
                let mut rng = seeded(derive_seed(seed, chunk as u64));
                let mut block = CoordSink::with_capacity(len * dim);
                for _ in 0..len {
                    let c = weighted_choice(&mut rng, &weights);
                    let means = &class_means[c];
                    let sigma = self.classes[c].spread * self.classes[c].scale;
                    for &mean in means.iter().take(dim) {
                        block.push(normal(&mut rng, mean, sigma).max(0.0));
                    }
                }
                block.into_coords()
            })
            .collect();
        FlatPoints::from_coords(coords, if self.n == 0 { 0 } else { dim })
            .expect("kdd surrogate emits finite coordinates")
    }

    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> String {
        format!("KDD-CUP-99-SIM(n={})", self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::{Distance, Euclidean};

    #[test]
    fn poker_schema_matches_uci_encoding() {
        let g = PokerHandSim::with_rows(500);
        let pts = g.generate(1);
        assert_eq!(pts.len(), 500);
        for p in &pts {
            assert_eq!(p.dim(), 10);
            for card in 0..5 {
                let suit = p[2 * card];
                let rank = p[2 * card + 1];
                assert!(
                    (1.0..=4.0).contains(&suit) && suit.fract() == 0.0,
                    "bad suit {suit}"
                );
                assert!(
                    (1.0..=13.0).contains(&rank) && rank.fract() == 0.0,
                    "bad rank {rank}"
                );
            }
        }
    }

    #[test]
    fn poker_hands_have_five_distinct_cards() {
        let g = PokerHandSim::with_rows(200);
        for p in g.generate(3) {
            let mut cards: Vec<(i64, i64)> = (0..5)
                .map(|c| (p[2 * c] as i64, p[2 * c + 1] as i64))
                .collect();
            cards.sort_unstable();
            cards.dedup();
            assert_eq!(cards.len(), 5, "hand contains a repeated card");
        }
    }

    #[test]
    fn poker_default_row_count_matches_uci() {
        assert_eq!(PokerHandSim::new().len(), POKER_HAND_TRAINING_ROWS);
        assert_eq!(PokerHandSim::default().dim(), 10);
    }

    #[test]
    fn poker_is_deterministic() {
        let g = PokerHandSim::with_rows(100);
        assert_eq!(g.generate(9), g.generate(9));
        assert_ne!(g.generate(9), g.generate(10));
    }

    #[test]
    fn kdd_generates_requested_rows_and_dims() {
        let g = KddCupSim::with_rows(2_000);
        let pts = g.generate(5);
        assert_eq!(pts.len(), 2_000);
        assert!(pts.iter().all(|p| p.dim() == 38));
        assert!(pts.iter().all(|p| p.coords().iter().all(|&c| c >= 0.0)));
    }

    #[test]
    fn kdd_is_dominated_by_a_few_dense_classes() {
        // With three classes holding ~98 % of the mass, the distance from a
        // random point to the nearest of three well-chosen points is tiny
        // compared to the data diameter; verify the cluster structure by
        // checking that intra-class spread << inter-class separation.
        let g = KddCupSim::with_rows(3_000);
        let pts = g.generate(7);
        // Estimate: pick the first point, most points should be either very
        // close (same dominant class) or very far (other class) — i.e. the
        // distance distribution is strongly bimodal, unlike uniform data.
        let d0: Vec<f64> = pts[1..]
            .iter()
            .map(|p| Euclidean.distance(&pts[0], p))
            .collect();
        let max = d0.iter().copied().fold(0.0, f64::max);
        let near = d0.iter().filter(|&&d| d < 0.05 * max).count();
        let far = d0.iter().filter(|&&d| d > 0.5 * max).count();
        assert!(
            near + far > d0.len() / 2,
            "distance distribution not strongly clustered"
        );
    }

    #[test]
    fn kdd_default_matches_published_sample_size() {
        let g = KddCupSim::new();
        assert_eq!(g.len(), KDD_CUP_10PCT_ROWS);
        assert_eq!(g.dim(), 38);
        assert!(g.class_count() >= 5);
    }

    #[test]
    fn kdd_is_deterministic() {
        let g = KddCupSim::with_rows(300);
        assert_eq!(g.generate(2), g.generate(2));
        assert_ne!(g.generate(2), g.generate(3));
    }

    #[test]
    fn names_identify_the_surrogates() {
        assert!(PokerHandSim::new().name().contains("POKER"));
        assert!(KddCupSim::new().name().contains("KDD"));
    }
}
