//! Synthetic workload generators: UNIF, GAU, UNB (Section 7.3).
//!
//! * [`UnifGenerator`] — `n` points uniform in a 2-dimensional square of a
//!   configurable side length (the paper uses a square; values in its UNIF
//!   tables are consistent with a side length of a few hundred units, so the
//!   default side is 1000 to produce objective values on the same scale).
//! * [`GauGenerator`] — `k'` cluster centers uniform in the unit cube (the
//!   paper's description), points assigned to clusters uniformly at random,
//!   Gaussian offset with σ = 1/10.  The paper scales coordinates such that
//!   the inter-cluster distances dominate; we expose the cube side so both
//!   the paper's "unit cube" reading and the magnitudes of its tables can be
//!   reproduced (`cube_side` defaults to 1000, σ is relative to the side).
//! * [`UnbGenerator`] — unbalanced version of GAU: roughly half of the
//!   points fall into a single cluster, the rest are spread uniformly over
//!   the remaining clusters.
//!
//! Every generator is deterministic given a seed and supports any dimension
//! (the paper uses two and three dimensions for the synthetic families).

use crate::rng::{derive_seed, normal, seeded, weighted_choice};
use crate::{CoordSink, PointGenerator};
use kcenter_metric::{FlatPoints, Point, Scalar};
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Points generated per parallel chunk; each chunk owns a derived RNG
/// stream, so results are independent of the rayon split while remaining
/// deterministic for a given seed.
const GEN_CHUNK: usize = 16_384;

/// Runs `fill(chunk_index, rng, sink)` for every chunk in parallel and
/// concatenates the per-chunk coordinate blocks into one flat store at the
/// target storage precision.  The RNG stream is precision-independent (all
/// draws are `f64`; the sink rounds at emission), so a given seed produces
/// the same geometry at every precision.
fn generate_chunked<S: Scalar, F>(n: usize, dim: usize, seed: u64, fill: F) -> FlatPoints<S>
where
    F: Fn(usize, &mut rand::rngs::StdRng, &mut CoordSink<S>) + Sync,
{
    let chunks = n.div_ceil(GEN_CHUNK);
    let coords: Vec<S> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(|chunk| {
            let start = chunk * GEN_CHUNK;
            let len = GEN_CHUNK.min(n - start);
            let mut rng = seeded(derive_seed(seed, chunk as u64));
            let mut block = CoordSink::with_capacity(len * dim);
            for _ in 0..len {
                fill(chunk, &mut rng, &mut block);
            }
            block.into_coords()
        })
        .collect();
    FlatPoints::from_coords(coords, if n == 0 { 0 } else { dim })
        .expect("generators emit finite coordinates")
}

/// Uniform points in a `dim`-dimensional axis-aligned cube.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnifGenerator {
    n: usize,
    dim: usize,
    side: f64,
}

impl UnifGenerator {
    /// `n` points uniform in a 2-D square with the default side length
    /// (130), which puts the objective values on the same scale as the
    /// paper's UNIF tables (≈91 at k = 2 for n = 100,000).
    pub fn new(n: usize) -> Self {
        Self::with_dim_and_side(n, 2, 130.0)
    }

    /// Fully parameterised constructor.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `side <= 0`.
    pub fn with_dim_and_side(n: usize, dim: usize, side: f64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            side > 0.0 && side.is_finite(),
            "side must be positive and finite"
        );
        Self { n, dim, side }
    }

    /// Side length of the square/cube.
    pub fn side(&self) -> f64 {
        self.side
    }
}

impl PointGenerator for UnifGenerator {
    fn generate_flat_at<S: Scalar>(&self, seed: u64) -> FlatPoints<S> {
        let (dim, side) = (self.dim, self.side);
        generate_chunked(self.n, dim, seed, |_, rng, block| {
            for _ in 0..dim {
                block.push(rng.gen::<f64>() * side);
            }
        })
    }

    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> String {
        format!("UNIF(n={}, d={})", self.n, self.dim)
    }
}

/// Shared machinery for the clustered generators (GAU and UNB).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClusteredConfig {
    n: usize,
    k_prime: usize,
    dim: usize,
    cube_side: f64,
    sigma_fraction: f64,
}

impl ClusteredConfig {
    fn new(n: usize, k_prime: usize, dim: usize, cube_side: f64, sigma_fraction: f64) -> Self {
        assert!(k_prime > 0, "number of inherent clusters must be positive");
        assert!(dim > 0, "dimension must be positive");
        assert!(
            cube_side > 0.0 && cube_side.is_finite(),
            "cube side must be positive"
        );
        assert!(sigma_fraction >= 0.0, "sigma must be non-negative");
        Self {
            n,
            k_prime,
            dim,
            cube_side,
            sigma_fraction,
        }
    }

    /// Cluster centers uniform in the cube.
    fn centers(&self, seed: u64) -> Vec<Point> {
        let mut rng = seeded(derive_seed(seed, u64::MAX));
        (0..self.k_prime)
            .map(|_| {
                Point::new(
                    (0..self.dim)
                        .map(|_| rng.gen::<f64>() * self.cube_side)
                        .collect(),
                )
            })
            .collect()
    }

    /// Generates points given per-cluster assignment weights.
    fn generate_with_weights<S: Scalar>(&self, seed: u64, weights: &[f64]) -> FlatPoints<S> {
        assert_eq!(weights.len(), self.k_prime);
        let centers = self.centers(seed);
        let sigma = self.sigma_fraction * self.cube_side;
        let dim = self.dim;
        generate_chunked(self.n, dim, seed, |_, rng, block| {
            let c = weighted_choice(rng, weights);
            let center = &centers[c];
            for d in 0..dim {
                block.push(normal(rng, center[d], sigma));
            }
        })
    }
}

/// GAU: balanced Gaussian clusters around `k'` uniform centers, mimicking
/// the synthetic data of Ene et al.
///
/// The paper describes cluster centers "uniformly randomly generated in a
/// unit cube" with a Gaussian point spread of σ = 1/10; the objective
/// values it reports (e.g. Table 2 dropping from ≈96 at k = 2 to ≈0.96 at
/// k = k′ = 25) imply that σ is small relative to the inter-center spacing.
/// The defaults here — a cube of side 100 with σ = 0.2 — reproduce both
/// that spacing/σ ratio and the absolute magnitudes of the paper's tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GauGenerator {
    config: ClusteredConfig,
}

impl GauGenerator {
    /// `n` points in `k'` balanced Gaussian clusters in a 3-D cube of side
    /// 100 with σ = 0.2 (see the type-level docs for how this maps onto the
    /// paper's description).
    pub fn new(n: usize, k_prime: usize) -> Self {
        Self::with_params(n, k_prime, 3, 100.0, 0.002)
    }

    /// Fully parameterised constructor (`sigma_fraction` is σ divided by the
    /// cube side; the paper fixes it to 1/10).
    pub fn with_params(
        n: usize,
        k_prime: usize,
        dim: usize,
        cube_side: f64,
        sigma_fraction: f64,
    ) -> Self {
        Self {
            config: ClusteredConfig::new(n, k_prime, dim, cube_side, sigma_fraction),
        }
    }

    /// Number of inherent clusters `k'`.
    pub fn k_prime(&self) -> usize {
        self.config.k_prime
    }

    /// The cluster centers that would be used for the given seed (exposed so
    /// tests can verify points concentrate around them).
    pub fn cluster_centers(&self, seed: u64) -> Vec<Point> {
        self.config.centers(seed)
    }
}

impl PointGenerator for GauGenerator {
    fn generate_flat_at<S: Scalar>(&self, seed: u64) -> FlatPoints<S> {
        let weights = vec![1.0; self.config.k_prime];
        self.config.generate_with_weights(seed, &weights)
    }

    fn len(&self) -> usize {
        self.config.n
    }

    fn dim(&self) -> usize {
        self.config.dim
    }

    fn name(&self) -> String {
        format!(
            "GAU(n={}, k'={}, d={})",
            self.config.n, self.config.k_prime, self.config.dim
        )
    }
}

/// UNB: unbalanced Gaussian clusters — about half of the points fall in one
/// cluster, the rest are spread uniformly over the remaining `k' - 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnbGenerator {
    config: ClusteredConfig,
    heavy_fraction: f64,
}

impl UnbGenerator {
    /// `n` points, `k'` clusters, roughly half of the mass in cluster 0;
    /// geometry otherwise identical to [`GauGenerator::new`].
    pub fn new(n: usize, k_prime: usize) -> Self {
        Self::with_params(n, k_prime, 3, 100.0, 0.002, 0.5)
    }

    /// Fully parameterised constructor; `heavy_fraction` is the expected
    /// share of points landing in the heavy cluster.
    pub fn with_params(
        n: usize,
        k_prime: usize,
        dim: usize,
        cube_side: f64,
        sigma_fraction: f64,
        heavy_fraction: f64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&heavy_fraction) || heavy_fraction == 1.0,
            "heavy fraction must lie in (0, 1]"
        );
        Self {
            config: ClusteredConfig::new(n, k_prime, dim, cube_side, sigma_fraction),
            heavy_fraction,
        }
    }

    /// Number of inherent clusters `k'`.
    pub fn k_prime(&self) -> usize {
        self.config.k_prime
    }

    /// Expected fraction of points in the heavy cluster.
    pub fn heavy_fraction(&self) -> f64 {
        self.heavy_fraction
    }
}

impl PointGenerator for UnbGenerator {
    fn generate_flat_at<S: Scalar>(&self, seed: u64) -> FlatPoints<S> {
        let k = self.config.k_prime;
        let mut weights = vec![0.0; k];
        if k == 1 {
            weights[0] = 1.0;
        } else {
            weights[0] = self.heavy_fraction;
            let rest = (1.0 - self.heavy_fraction) / (k - 1) as f64;
            for w in weights.iter_mut().skip(1) {
                *w = rest;
            }
        }
        self.config.generate_with_weights(seed, &weights)
    }

    fn len(&self) -> usize {
        self.config.n
    }

    fn dim(&self) -> usize {
        self.config.dim
    }

    fn name(&self) -> String {
        format!(
            "UNB(n={}, k'={}, d={})",
            self.config.n, self.config.k_prime, self.config.dim
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::Distance;
    use kcenter_metric::{BoundingBox, Euclidean};

    #[test]
    fn unif_generates_requested_count_and_dim() {
        let g = UnifGenerator::new(1000);
        let pts = g.generate(1);
        assert_eq!(pts.len(), 1000);
        assert!(pts.iter().all(|p| p.dim() == 2));
        assert_eq!(g.name(), "UNIF(n=1000, d=2)");
    }

    #[test]
    fn unif_points_stay_inside_square() {
        let g = UnifGenerator::with_dim_and_side(5000, 2, 100.0);
        let pts = g.generate(2);
        let bbox = BoundingBox::of(&pts).unwrap().unwrap();
        assert!(bbox.min().iter().all(|&c| c >= 0.0));
        assert!(bbox.max().iter().all(|&c| c <= 100.0));
        // Uniform data should nearly fill the square.
        assert!(bbox.extent(0) > 90.0 && bbox.extent(1) > 90.0);
    }

    #[test]
    fn unif_is_deterministic_per_seed() {
        let g = UnifGenerator::new(500);
        assert_eq!(g.generate(7), g.generate(7));
        assert_ne!(g.generate(7), g.generate(8));
    }

    #[test]
    fn unif_zero_points_is_empty() {
        let g = UnifGenerator::new(0);
        assert!(g.is_empty());
        assert!(g.generate(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn unif_rejects_zero_dimension() {
        UnifGenerator::with_dim_and_side(10, 0, 1.0);
    }

    #[test]
    fn gau_points_concentrate_around_their_centers() {
        let g = GauGenerator::new(3000, 5);
        let pts = g.generate(11);
        let centers = g.cluster_centers(11);
        assert_eq!(pts.len(), 3000);
        // σ = 0.2, so virtually every point lies within 5σ = 1.0 of some center.
        let far = pts
            .iter()
            .filter(|p| {
                centers
                    .iter()
                    .map(|c| Euclidean.distance(p, c))
                    .fold(f64::INFINITY, f64::min)
                    > 1.0
            })
            .count();
        assert!(far < 10, "too many points far from all centers: {far}");
    }

    #[test]
    fn gau_clusters_are_roughly_balanced() {
        let g = GauGenerator::new(10_000, 4);
        let pts = g.generate(3);
        let centers = g.cluster_centers(3);
        let mut counts = vec![0usize; centers.len()];
        for p in &pts {
            let (best, _) = centers
                .iter()
                .enumerate()
                .map(|(i, c)| (i, Euclidean.distance(p, c)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            counts[best] += 1;
        }
        for &c in &counts {
            let share = c as f64 / 10_000.0;
            assert!(
                (share - 0.25).abs() < 0.08,
                "unbalanced GAU cluster share {share}"
            );
        }
    }

    #[test]
    fn unb_has_one_dominant_cluster() {
        let g = UnbGenerator::new(10_000, 5);
        let pts = g.generate(9);
        let centers = GauGenerator::with_params(10_000, 5, 3, 100.0, 0.002).cluster_centers(9);
        let mut counts = vec![0usize; centers.len()];
        for p in &pts {
            let (best, _) = centers
                .iter()
                .enumerate()
                .map(|(i, c)| (i, Euclidean.distance(p, c)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            counts[best] += 1;
        }
        let max_share = *counts.iter().max().unwrap() as f64 / 10_000.0;
        assert!(
            max_share > 0.4,
            "heavy cluster share too small: {max_share}"
        );
    }

    #[test]
    fn unb_single_cluster_degenerates_gracefully() {
        let g = UnbGenerator::new(100, 1);
        assert_eq!(g.generate(0).len(), 100);
    }

    #[test]
    fn generators_report_metadata() {
        let g = GauGenerator::new(10, 2);
        assert_eq!(g.len(), 10);
        assert_eq!(g.dim(), 3);
        assert_eq!(g.k_prime(), 2);
        let u = UnbGenerator::new(10, 2);
        assert_eq!(u.k_prime(), 2);
        assert!((u.heavy_fraction() - 0.5).abs() < 1e-12);
        assert!(u.name().starts_with("UNB"));
    }

    #[test]
    #[should_panic(expected = "clusters must be positive")]
    fn gau_rejects_zero_clusters() {
        GauGenerator::new(10, 0);
    }

    #[test]
    fn gau_deterministic_and_seed_sensitive() {
        let g = GauGenerator::new(200, 3);
        assert_eq!(g.generate(5), g.generate(5));
        assert_ne!(g.generate(5), g.generate(6));
    }
}
