//! Synthetic workload generators: UNIF, GAU, UNB (Section 7.3).
//!
//! * [`UnifGenerator`] — `n` points uniform in a 2-dimensional square of a
//!   configurable side length (the paper uses a square; values in its UNIF
//!   tables are consistent with a side length of a few hundred units, so the
//!   default side is 1000 to produce objective values on the same scale).
//! * [`GauGenerator`] — `k'` cluster centers uniform in the unit cube (the
//!   paper's description), points assigned to clusters uniformly at random,
//!   Gaussian offset with σ = 1/10.  The paper scales coordinates such that
//!   the inter-cluster distances dominate; we expose the cube side so both
//!   the paper's "unit cube" reading and the magnitudes of its tables can be
//!   reproduced (`cube_side` defaults to 1000, σ is relative to the side).
//! * [`UnbGenerator`] — unbalanced version of GAU: roughly half of the
//!   points fall into a single cluster, the rest are spread uniformly over
//!   the remaining clusters.
//!
//! Every generator is deterministic given a seed and supports any dimension
//! (the paper uses two and three dimensions for the synthetic families).

use crate::rng::{derive_seed, normal, seeded, weighted_choice};
use crate::{CoordSink, PointGenerator};
use kcenter_metric::{FlatPoints, Point, Scalar};
use rand::Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Points generated per parallel chunk; each chunk owns a derived RNG
/// stream, so results are independent of the rayon split while remaining
/// deterministic for a given seed.
const GEN_CHUNK: usize = 16_384;

/// Runs `fill(point_index, rng, sink)` for every point in parallel chunks
/// and concatenates the per-chunk coordinate blocks into one flat store at
/// the target storage precision.  The RNG stream is precision-independent
/// (all draws are `f64`; the sink rounds at emission), so a given seed
/// produces the same geometry at every precision.  `fill` receives the
/// global point index (the chunk is `index / GEN_CHUNK`), letting
/// generators place specific rows — e.g. planted outliers — by position
/// while keeping the chunk-derived RNG streams rayon-split-independent.
fn generate_chunked<S: Scalar, F>(n: usize, dim: usize, seed: u64, fill: F) -> FlatPoints<S>
where
    F: Fn(usize, &mut rand::rngs::StdRng, &mut CoordSink<S>) + Sync,
{
    let chunks = n.div_ceil(GEN_CHUNK);
    let coords: Vec<S> = (0..chunks)
        .into_par_iter()
        .flat_map_iter(|chunk| {
            let start = chunk * GEN_CHUNK;
            let len = GEN_CHUNK.min(n - start);
            let mut rng = seeded(derive_seed(seed, chunk as u64));
            let mut block = CoordSink::with_capacity(len * dim);
            for i in 0..len {
                fill(start + i, &mut rng, &mut block);
            }
            block.into_coords()
        })
        .collect();
    FlatPoints::from_coords(coords, if n == 0 { 0 } else { dim })
        .expect("generators emit finite coordinates")
}

/// Uniform points in a `dim`-dimensional axis-aligned cube.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnifGenerator {
    n: usize,
    dim: usize,
    side: f64,
}

impl UnifGenerator {
    /// `n` points uniform in a 2-D square with the default side length
    /// (130), which puts the objective values on the same scale as the
    /// paper's UNIF tables (≈91 at k = 2 for n = 100,000).
    pub fn new(n: usize) -> Self {
        Self::with_dim_and_side(n, 2, 130.0)
    }

    /// Fully parameterised constructor.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `side <= 0`.
    pub fn with_dim_and_side(n: usize, dim: usize, side: f64) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert!(
            side > 0.0 && side.is_finite(),
            "side must be positive and finite"
        );
        Self { n, dim, side }
    }

    /// Side length of the square/cube.
    pub fn side(&self) -> f64 {
        self.side
    }
}

impl PointGenerator for UnifGenerator {
    fn generate_flat_at<S: Scalar>(&self, seed: u64) -> FlatPoints<S> {
        let (dim, side) = (self.dim, self.side);
        generate_chunked(self.n, dim, seed, |_, rng, block| {
            for _ in 0..dim {
                block.push(rng.gen::<f64>() * side);
            }
        })
    }

    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> String {
        format!("UNIF(n={}, d={})", self.n, self.dim)
    }
}

/// Shared machinery for the clustered generators (GAU and UNB).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ClusteredConfig {
    n: usize,
    k_prime: usize,
    dim: usize,
    cube_side: f64,
    sigma_fraction: f64,
}

impl ClusteredConfig {
    fn new(n: usize, k_prime: usize, dim: usize, cube_side: f64, sigma_fraction: f64) -> Self {
        assert!(k_prime > 0, "number of inherent clusters must be positive");
        assert!(dim > 0, "dimension must be positive");
        assert!(
            cube_side > 0.0 && cube_side.is_finite(),
            "cube side must be positive"
        );
        assert!(sigma_fraction >= 0.0, "sigma must be non-negative");
        Self {
            n,
            k_prime,
            dim,
            cube_side,
            sigma_fraction,
        }
    }

    /// Cluster centers uniform in the cube.
    fn centers(&self, seed: u64) -> Vec<Point> {
        let mut rng = seeded(derive_seed(seed, u64::MAX));
        (0..self.k_prime)
            .map(|_| {
                Point::new(
                    (0..self.dim)
                        .map(|_| rng.gen::<f64>() * self.cube_side)
                        .collect(),
                )
            })
            .collect()
    }

    /// Generates points given per-cluster assignment weights.
    fn generate_with_weights<S: Scalar>(&self, seed: u64, weights: &[f64]) -> FlatPoints<S> {
        assert_eq!(weights.len(), self.k_prime);
        let centers = self.centers(seed);
        let sigma = self.sigma_fraction * self.cube_side;
        let dim = self.dim;
        generate_chunked(self.n, dim, seed, |_, rng, block| {
            let c = weighted_choice(rng, weights);
            let center = &centers[c];
            for d in 0..dim {
                block.push(normal(rng, center[d], sigma));
            }
        })
    }
}

/// GAU: balanced Gaussian clusters around `k'` uniform centers, mimicking
/// the synthetic data of Ene et al.
///
/// The paper describes cluster centers "uniformly randomly generated in a
/// unit cube" with a Gaussian point spread of σ = 1/10; the objective
/// values it reports (e.g. Table 2 dropping from ≈96 at k = 2 to ≈0.96 at
/// k = k′ = 25) imply that σ is small relative to the inter-center spacing.
/// The defaults here — a cube of side 100 with σ = 0.2 — reproduce both
/// that spacing/σ ratio and the absolute magnitudes of the paper's tables.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GauGenerator {
    config: ClusteredConfig,
}

impl GauGenerator {
    /// `n` points in `k'` balanced Gaussian clusters in a 3-D cube of side
    /// 100 with σ = 0.2 (see the type-level docs for how this maps onto the
    /// paper's description).
    pub fn new(n: usize, k_prime: usize) -> Self {
        Self::with_params(n, k_prime, 3, 100.0, 0.002)
    }

    /// Fully parameterised constructor (`sigma_fraction` is σ divided by the
    /// cube side; the paper fixes it to 1/10).
    pub fn with_params(
        n: usize,
        k_prime: usize,
        dim: usize,
        cube_side: f64,
        sigma_fraction: f64,
    ) -> Self {
        Self {
            config: ClusteredConfig::new(n, k_prime, dim, cube_side, sigma_fraction),
        }
    }

    /// Number of inherent clusters `k'`.
    pub fn k_prime(&self) -> usize {
        self.config.k_prime
    }

    /// The cluster centers that would be used for the given seed (exposed so
    /// tests can verify points concentrate around them).
    pub fn cluster_centers(&self, seed: u64) -> Vec<Point> {
        self.config.centers(seed)
    }
}

impl PointGenerator for GauGenerator {
    fn generate_flat_at<S: Scalar>(&self, seed: u64) -> FlatPoints<S> {
        let weights = vec![1.0; self.config.k_prime];
        self.config.generate_with_weights(seed, &weights)
    }

    fn len(&self) -> usize {
        self.config.n
    }

    fn dim(&self) -> usize {
        self.config.dim
    }

    fn name(&self) -> String {
        format!(
            "GAU(n={}, k'={}, d={})",
            self.config.n, self.config.k_prime, self.config.dim
        )
    }
}

/// UNB: unbalanced Gaussian clusters — about half of the points fall in one
/// cluster, the rest are spread uniformly over the remaining `k' - 1`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnbGenerator {
    config: ClusteredConfig,
    heavy_fraction: f64,
}

impl UnbGenerator {
    /// `n` points, `k'` clusters, roughly half of the mass in cluster 0;
    /// geometry otherwise identical to [`GauGenerator::new`].
    pub fn new(n: usize, k_prime: usize) -> Self {
        Self::with_params(n, k_prime, 3, 100.0, 0.002, 0.5)
    }

    /// Fully parameterised constructor; `heavy_fraction` is the expected
    /// share of points landing in the heavy cluster.
    pub fn with_params(
        n: usize,
        k_prime: usize,
        dim: usize,
        cube_side: f64,
        sigma_fraction: f64,
        heavy_fraction: f64,
    ) -> Self {
        assert!(
            (0.0..1.0).contains(&heavy_fraction) || heavy_fraction == 1.0,
            "heavy fraction must lie in (0, 1]"
        );
        Self {
            config: ClusteredConfig::new(n, k_prime, dim, cube_side, sigma_fraction),
            heavy_fraction,
        }
    }

    /// Number of inherent clusters `k'`.
    pub fn k_prime(&self) -> usize {
        self.config.k_prime
    }

    /// Expected fraction of points in the heavy cluster.
    pub fn heavy_fraction(&self) -> f64 {
        self.heavy_fraction
    }
}

impl PointGenerator for UnbGenerator {
    fn generate_flat_at<S: Scalar>(&self, seed: u64) -> FlatPoints<S> {
        let k = self.config.k_prime;
        let mut weights = vec![0.0; k];
        if k == 1 {
            weights[0] = 1.0;
        } else {
            weights[0] = self.heavy_fraction;
            let rest = (1.0 - self.heavy_fraction) / (k - 1) as f64;
            for w in weights.iter_mut().skip(1) {
                *w = rest;
            }
        }
        self.config.generate_with_weights(seed, &weights)
    }

    fn len(&self) -> usize {
        self.config.n
    }

    fn dim(&self) -> usize {
        self.config.dim
    }

    fn name(&self) -> String {
        format!(
            "UNB(n={}, k'={}, d={})",
            self.config.n, self.config.k_prime, self.config.dim
        )
    }
}

/// EXP: adversarial exponential-spread clusters.
///
/// `k'` tight Gaussian clusters whose centers sit at geometrically growing
/// offsets from the origin — center `c` lies at `base · ratio^c` along axis
/// `c mod dim` — so the inter-cluster distances span an exponential range
/// (aspect ratio `ratio^(k'-1)`).  This is the classic adversarial input
/// for grid bucketing and for any heuristic tuned to uniform spacing: most
/// of the diameter is carried by a single pair of clusters.
///
/// The constructor rejects configurations whose farthest center would
/// approach [`Scalar::MAX_ABS_COORD`] for the `f32` store, so the family is
/// generatable at every storage precision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpGenerator {
    n: usize,
    k_prime: usize,
    dim: usize,
    base: f64,
    ratio: f64,
    sigma_fraction: f64,
}

impl ExpGenerator {
    /// `n` points in `k'` exponentially spread clusters in the plane with
    /// the default base spacing 1, ratio 2 and σ = 0.05 · base.
    pub fn new(n: usize, k_prime: usize) -> Self {
        Self::with_params(n, k_prime, 2, 1.0, 2.0, 0.05)
    }

    /// Fully parameterised constructor.
    ///
    /// # Panics
    ///
    /// Panics if `k_prime == 0`, `dim == 0`, `base <= 0`, `ratio < 1`,
    /// `sigma_fraction < 0`, or the farthest center `base · ratio^(k'-1)`
    /// exceeds `1e14` (beyond which an `f32` store could overflow squared
    /// distances).
    pub fn with_params(
        n: usize,
        k_prime: usize,
        dim: usize,
        base: f64,
        ratio: f64,
        sigma_fraction: f64,
    ) -> Self {
        assert!(k_prime > 0, "number of inherent clusters must be positive");
        assert!(dim > 0, "dimension must be positive");
        assert!(base > 0.0 && base.is_finite(), "base must be positive");
        assert!(ratio >= 1.0 && ratio.is_finite(), "ratio must be >= 1");
        assert!(sigma_fraction >= 0.0, "sigma must be non-negative");
        let spread = base * ratio.powi(k_prime as i32 - 1);
        assert!(
            spread.is_finite() && spread <= 1e14,
            "exponential spread {spread:e} exceeds the f32-safe coordinate bound"
        );
        Self {
            n,
            k_prime,
            dim,
            base,
            ratio,
            sigma_fraction,
        }
    }

    /// Number of inherent clusters `k'`.
    pub fn k_prime(&self) -> usize {
        self.k_prime
    }

    /// The deterministic (seed-independent) cluster centers.
    pub fn cluster_centers(&self) -> Vec<Point> {
        (0..self.k_prime)
            .map(|c| {
                let mut coords = vec![0.0; self.dim];
                coords[c % self.dim] = self.base * self.ratio.powi(c as i32);
                Point::new(coords)
            })
            .collect()
    }
}

impl PointGenerator for ExpGenerator {
    fn generate_flat_at<S: Scalar>(&self, seed: u64) -> FlatPoints<S> {
        let centers = self.cluster_centers();
        let sigma = self.sigma_fraction * self.base;
        let weights = vec![1.0; self.k_prime];
        let dim = self.dim;
        generate_chunked(self.n, dim, seed, |_, rng, block| {
            let c = weighted_choice(rng, &weights);
            let center = &centers[c];
            for d in 0..dim {
                block.push(normal(rng, center[d], sigma));
            }
        })
    }

    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> String {
        format!(
            "EXP(n={}, k'={}, d={}, ratio={})",
            self.n, self.k_prime, self.dim, self.ratio
        )
    }
}

/// DUP: adversarial duplicate-heavy / degenerate data.
///
/// `n` points drawn uniformly over only `distinct` lattice locations, so
/// the multiset carries massive exact duplication (`n / distinct` copies of
/// each location on average) and, with `distinct == 1`, fully degenerates
/// to one repeated point.  The lattice coordinates are small integers, which
/// every storage precision represents exactly: duplicates are bit-identical
/// at `f32` and `f64` alike, so the solvers' documented lowest-index
/// tie-breaking is actually exercised rather than masked by rounding noise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DupGenerator {
    n: usize,
    distinct: usize,
    dim: usize,
    spacing: f64,
}

impl DupGenerator {
    /// `n` points over `distinct` two-dimensional lattice locations with
    /// unit spacing.
    pub fn new(n: usize, distinct: usize) -> Self {
        Self::with_params(n, distinct, 2, 1.0)
    }

    /// Fully parameterised constructor.
    ///
    /// # Panics
    ///
    /// Panics if `distinct == 0`, `dim == 0`, or `spacing <= 0`.
    pub fn with_params(n: usize, distinct: usize, dim: usize, spacing: f64) -> Self {
        assert!(
            distinct > 0,
            "number of distinct locations must be positive"
        );
        assert!(dim > 0, "dimension must be positive");
        assert!(
            spacing > 0.0 && spacing.is_finite(),
            "spacing must be positive and finite"
        );
        Self {
            n,
            distinct,
            dim,
            spacing,
        }
    }

    /// Number of distinct locations the points collapse onto.
    pub fn distinct(&self) -> usize {
        self.distinct
    }

    /// The deterministic lattice locations (mixed-radix integer lattice,
    /// scaled by the spacing).
    pub fn locations(&self) -> Vec<Point> {
        let side = (self.distinct as f64)
            .powf(1.0 / self.dim as f64)
            .ceil()
            .max(1.0) as usize;
        (0..self.distinct)
            .map(|j| {
                let mut rest = j;
                let coords = (0..self.dim)
                    .map(|_| {
                        let digit = rest % side;
                        rest /= side;
                        digit as f64 * self.spacing
                    })
                    .collect();
                Point::new(coords)
            })
            .collect()
    }
}

impl PointGenerator for DupGenerator {
    fn generate_flat_at<S: Scalar>(&self, seed: u64) -> FlatPoints<S> {
        let locations = self.locations();
        let distinct = self.distinct;
        let dim = self.dim;
        generate_chunked(self.n, dim, seed, |_, rng, block| {
            // Uniform location choice from the f64 stream (kept off the
            // integer API so the draw count per point is always one).
            let j = ((rng.gen::<f64>() * distinct as f64) as usize).min(distinct - 1);
            let loc = &locations[j];
            for d in 0..dim {
                block.push(loc[d]);
            }
        })
    }

    fn len(&self) -> usize {
        self.n
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn name(&self) -> String {
        format!(
            "DUP(n={}, distinct={}, d={})",
            self.n, self.distinct, self.dim
        )
    }
}

/// GAU+OUT: Gaussian clusters with planted far outliers — the workload for
/// the robust (with-outliers) k-center variant.
///
/// The first `n - outliers` points are exactly the balanced Gaussian
/// clusters of [`GauGenerator`]; the last `outliers` points are planted
/// deterministically far outside the cluster cube (outlier `m` sits at
/// distance `spread · cube_side · (m + 2)` along axis `m mod dim`, with
/// alternating sign), so each planted point is farther from every cluster
/// than any inlier and dropping the `z = outliers` farthest points provably
/// shrinks the covering radius.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlantedOutlierGenerator {
    config: ClusteredConfig,
    outliers: usize,
    spread: f64,
}

impl PlantedOutlierGenerator {
    /// `n` total points: `n - outliers` in `k'` balanced Gaussian clusters
    /// (geometry identical to [`GauGenerator::new`]) plus `outliers`
    /// planted far points with the default spread factor 50.
    pub fn new(n: usize, k_prime: usize, outliers: usize) -> Self {
        Self::with_params(n, k_prime, outliers, 3, 100.0, 0.002, 50.0)
    }

    /// Fully parameterised constructor.
    ///
    /// # Panics
    ///
    /// Panics if `outliers > n`, `spread <= 1`, or the farthest planted
    /// coordinate `spread · cube_side · (outliers + 1)` exceeds `1e14`.
    pub fn with_params(
        n: usize,
        k_prime: usize,
        outliers: usize,
        dim: usize,
        cube_side: f64,
        sigma_fraction: f64,
        spread: f64,
    ) -> Self {
        assert!(outliers <= n, "cannot plant more outliers than points");
        assert!(
            spread > 1.0 && spread.is_finite(),
            "spread must exceed 1 so outliers leave the cluster cube"
        );
        let farthest = spread * cube_side * (outliers as f64 + 1.0);
        assert!(
            farthest.is_finite() && farthest <= 1e14,
            "planted outlier coordinate {farthest:e} exceeds the f32-safe bound"
        );
        Self {
            config: ClusteredConfig::new(n, k_prime, dim, cube_side, sigma_fraction),
            outliers,
            spread,
        }
    }

    /// Number of planted outliers.
    pub fn outliers(&self) -> usize {
        self.outliers
    }

    /// Number of inherent clusters `k'`.
    pub fn k_prime(&self) -> usize {
        self.config.k_prime
    }
}

impl PointGenerator for PlantedOutlierGenerator {
    fn generate_flat_at<S: Scalar>(&self, seed: u64) -> FlatPoints<S> {
        let centers = self.config.centers(seed);
        let sigma = self.config.sigma_fraction * self.config.cube_side;
        let weights = vec![1.0; self.config.k_prime];
        let dim = self.config.dim;
        let side = self.config.cube_side;
        let spread = self.spread;
        let cut = self.config.n - self.outliers;
        generate_chunked(self.config.n, dim, seed, |index, rng, block| {
            if index >= cut {
                // Planted outlier: deterministic by position, far outside
                // the cluster cube, pairwise spread so no k centers can
                // cover two of them cheaply.
                let m = index - cut;
                let axis = m % dim;
                let sign = if (m / dim).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
                let reach = spread * side * (m as f64 + 2.0);
                for d in 0..dim {
                    block.push(if d == axis { sign * reach } else { side * 0.5 });
                }
            } else {
                let c = weighted_choice(rng, &weights);
                let center = &centers[c];
                for d in 0..dim {
                    block.push(normal(rng, center[d], sigma));
                }
            }
        })
    }

    fn len(&self) -> usize {
        self.config.n
    }

    fn dim(&self) -> usize {
        self.config.dim
    }

    fn name(&self) -> String {
        format!(
            "GAU+OUT(n={}, k'={}, z={}, d={})",
            self.config.n, self.config.k_prime, self.outliers, self.config.dim
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::Distance;
    use kcenter_metric::{BoundingBox, Euclidean};

    #[test]
    fn unif_generates_requested_count_and_dim() {
        let g = UnifGenerator::new(1000);
        let pts = g.generate(1);
        assert_eq!(pts.len(), 1000);
        assert!(pts.iter().all(|p| p.dim() == 2));
        assert_eq!(g.name(), "UNIF(n=1000, d=2)");
    }

    #[test]
    fn unif_points_stay_inside_square() {
        let g = UnifGenerator::with_dim_and_side(5000, 2, 100.0);
        let pts = g.generate(2);
        let bbox = BoundingBox::of(&pts).unwrap().unwrap();
        assert!(bbox.min().iter().all(|&c| c >= 0.0));
        assert!(bbox.max().iter().all(|&c| c <= 100.0));
        // Uniform data should nearly fill the square.
        assert!(bbox.extent(0) > 90.0 && bbox.extent(1) > 90.0);
    }

    #[test]
    fn unif_is_deterministic_per_seed() {
        let g = UnifGenerator::new(500);
        assert_eq!(g.generate(7), g.generate(7));
        assert_ne!(g.generate(7), g.generate(8));
    }

    #[test]
    fn unif_zero_points_is_empty() {
        let g = UnifGenerator::new(0);
        assert!(g.is_empty());
        assert!(g.generate(1).is_empty());
    }

    #[test]
    #[should_panic(expected = "dimension must be positive")]
    fn unif_rejects_zero_dimension() {
        UnifGenerator::with_dim_and_side(10, 0, 1.0);
    }

    #[test]
    fn gau_points_concentrate_around_their_centers() {
        let g = GauGenerator::new(3000, 5);
        let pts = g.generate(11);
        let centers = g.cluster_centers(11);
        assert_eq!(pts.len(), 3000);
        // σ = 0.2, so virtually every point lies within 5σ = 1.0 of some center.
        let far = pts
            .iter()
            .filter(|p| {
                centers
                    .iter()
                    .map(|c| Euclidean.distance(p, c))
                    .fold(f64::INFINITY, f64::min)
                    > 1.0
            })
            .count();
        assert!(far < 10, "too many points far from all centers: {far}");
    }

    #[test]
    fn gau_clusters_are_roughly_balanced() {
        let g = GauGenerator::new(10_000, 4);
        let pts = g.generate(3);
        let centers = g.cluster_centers(3);
        let mut counts = vec![0usize; centers.len()];
        for p in &pts {
            let (best, _) = centers
                .iter()
                .enumerate()
                .map(|(i, c)| (i, Euclidean.distance(p, c)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            counts[best] += 1;
        }
        for &c in &counts {
            let share = c as f64 / 10_000.0;
            assert!(
                (share - 0.25).abs() < 0.08,
                "unbalanced GAU cluster share {share}"
            );
        }
    }

    #[test]
    fn unb_has_one_dominant_cluster() {
        let g = UnbGenerator::new(10_000, 5);
        let pts = g.generate(9);
        let centers = GauGenerator::with_params(10_000, 5, 3, 100.0, 0.002).cluster_centers(9);
        let mut counts = vec![0usize; centers.len()];
        for p in &pts {
            let (best, _) = centers
                .iter()
                .enumerate()
                .map(|(i, c)| (i, Euclidean.distance(p, c)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            counts[best] += 1;
        }
        let max_share = *counts.iter().max().unwrap() as f64 / 10_000.0;
        assert!(
            max_share > 0.4,
            "heavy cluster share too small: {max_share}"
        );
    }

    #[test]
    fn unb_single_cluster_degenerates_gracefully() {
        let g = UnbGenerator::new(100, 1);
        assert_eq!(g.generate(0).len(), 100);
    }

    #[test]
    fn generators_report_metadata() {
        let g = GauGenerator::new(10, 2);
        assert_eq!(g.len(), 10);
        assert_eq!(g.dim(), 3);
        assert_eq!(g.k_prime(), 2);
        let u = UnbGenerator::new(10, 2);
        assert_eq!(u.k_prime(), 2);
        assert!((u.heavy_fraction() - 0.5).abs() < 1e-12);
        assert!(u.name().starts_with("UNB"));
    }

    #[test]
    #[should_panic(expected = "clusters must be positive")]
    fn gau_rejects_zero_clusters() {
        GauGenerator::new(10, 0);
    }

    #[test]
    fn gau_deterministic_and_seed_sensitive() {
        let g = GauGenerator::new(200, 3);
        assert_eq!(g.generate(5), g.generate(5));
        assert_ne!(g.generate(5), g.generate(6));
    }

    #[test]
    fn exp_centers_spread_geometrically() {
        let g = ExpGenerator::new(1000, 6);
        let centers = g.cluster_centers();
        assert_eq!(centers.len(), 6);
        // Center c has norm base * ratio^c = 2^c with the defaults.
        for (c, center) in centers.iter().enumerate() {
            let norm = center.coords().iter().map(|x| x * x).sum::<f64>().sqrt();
            assert!((norm - (2.0f64).powi(c as i32)).abs() < 1e-9);
        }
        let pts = g.generate(3);
        assert_eq!(pts.len(), 1000);
        assert_eq!(g.name(), "EXP(n=1000, k'=6, d=2, ratio=2)");
    }

    #[test]
    fn exp_points_hug_their_centers() {
        let g = ExpGenerator::new(2000, 5);
        let pts = g.generate(11);
        let centers = g.cluster_centers();
        // σ = 0.05, so virtually every point lies within 0.5 of a center.
        let far = pts
            .iter()
            .filter(|p| {
                centers
                    .iter()
                    .map(|c| Euclidean.distance(p, c))
                    .fold(f64::INFINITY, f64::min)
                    > 0.5
            })
            .count();
        assert!(far < 5, "too many stray EXP points: {far}");
    }

    #[test]
    #[should_panic(expected = "f32-safe coordinate bound")]
    fn exp_rejects_overflowing_spread() {
        ExpGenerator::with_params(10, 60, 2, 1.0, 1e3, 0.05);
    }

    #[test]
    fn dup_collapses_onto_the_lattice() {
        let g = DupGenerator::new(5000, 7);
        let pts = g.generate(2);
        let locations = g.locations();
        assert_eq!(locations.len(), 7);
        let mut seen = std::collections::HashSet::new();
        for p in &pts {
            let key: Vec<u64> = p.coords().iter().map(|c| c.to_bits()).collect();
            seen.insert(key);
            assert!(
                locations.iter().any(|l| l.coords() == p.coords()),
                "point off the lattice"
            );
        }
        assert!(seen.len() <= 7);
        // With n >> distinct, every location is hit.
        assert_eq!(seen.len(), 7);
    }

    #[test]
    fn dup_duplicates_are_bit_identical_across_precisions() {
        let g = DupGenerator::new(300, 4);
        let f32_pts = g.generate_flat_at::<f32>(9);
        let f64_pts = g.generate_flat_at::<f64>(9);
        for i in 0..300 {
            let wide: Vec<f64> = f32_pts.row(i).iter().map(|&c| c as f64).collect();
            assert_eq!(wide.as_slice(), f64_pts.row(i), "row {i} differs");
        }
    }

    #[test]
    fn dup_fully_degenerate_single_location() {
        let g = DupGenerator::new(50, 1);
        let pts = g.generate(0);
        assert!(pts.iter().all(|p| p.coords() == pts[0].coords()));
    }

    #[test]
    fn planted_outliers_are_the_trailing_rows_and_far() {
        let g = PlantedOutlierGenerator::new(1000, 4, 10);
        let flat = g.generate_flat_at::<f64>(5);
        assert_eq!(flat.len(), 1000);
        // Inliers stay near the cube [0, 100]^3; planted rows are far out.
        for i in 0..990 {
            assert!(flat.row(i).iter().all(|c| c.abs() < 200.0), "inlier {i}");
        }
        for i in 990..1000 {
            let max = flat.row(i).iter().fold(0.0f64, |m, c| m.max(c.abs()));
            assert!(max >= 100.0 * 50.0, "outlier {i} not planted far: {max}");
        }
        assert_eq!(g.outliers(), 10);
        assert_eq!(g.k_prime(), 4);
    }

    #[test]
    fn planted_outliers_share_the_gau_prefix_stream() {
        // The inlier prefix draws from the same chunk-derived RNG stream as
        // plain GAU, so the first rows coincide bit-for-bit.
        let gau = GauGenerator::new(500, 4).generate_flat_at::<f64>(5);
        let out = PlantedOutlierGenerator::new(500, 4, 20).generate_flat_at::<f64>(5);
        for i in 0..480 {
            assert_eq!(gau.row(i), out.row(i), "inlier row {i} diverged");
        }
    }

    #[test]
    #[should_panic(expected = "cannot plant more outliers than points")]
    fn planted_outliers_rejects_z_above_n() {
        PlantedOutlierGenerator::new(10, 2, 11);
    }

    #[test]
    fn adversarial_generators_deterministic_per_seed() {
        let e = ExpGenerator::new(400, 5);
        assert_eq!(e.generate(7), e.generate(7));
        assert_ne!(e.generate(7), e.generate(8));
        let d = DupGenerator::new(400, 16);
        assert_eq!(d.generate(7), d.generate(7));
        assert_ne!(d.generate(7), d.generate(8));
        let p = PlantedOutlierGenerator::new(400, 5, 8);
        assert_eq!(p.generate(7), p.generate(7));
        assert_ne!(p.generate(7), p.generate(8));
    }
}
