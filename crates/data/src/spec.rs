//! Declarative data-set specifications for the experiment harness.
//!
//! Every table and figure in the paper is defined by a workload (which
//! generator, which parameters) and an algorithm sweep.  [`DatasetSpec`]
//! captures the workload half so the bench harness and the `repro` binary
//! can describe experiments as data, and so the exact configuration ends up
//! serialised next to the measured results.

use crate::real::{KddCupSim, PokerHandSim};
use crate::synthetic::{GauGenerator, UnbGenerator, UnifGenerator};
use crate::PointGenerator;
use kcenter_metric::{Euclidean, FlatPoints, Point, Scalar, VecSpace};
use serde::{Deserialize, Serialize};

/// A declarative description of one of the paper's workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DatasetSpec {
    /// UNIF: `n` points uniform in a two-dimensional square.
    Unif {
        /// Number of points.
        n: usize,
    },
    /// GAU: `n` points in `k_prime` balanced Gaussian clusters.
    Gau {
        /// Number of points.
        n: usize,
        /// Number of inherent clusters (the paper's `k'`).
        k_prime: usize,
    },
    /// UNB: like GAU but with half of the mass in one cluster.
    Unb {
        /// Number of points.
        n: usize,
        /// Number of inherent clusters.
        k_prime: usize,
    },
    /// Simulated Poker Hand training set.
    PokerHand {
        /// Number of rows (the UCI training set has 25,010).
        n: usize,
    },
    /// Simulated KDD Cup 1999 10 % sample.
    KddCup {
        /// Number of rows (the UCI 10 % sample has ~494k).
        n: usize,
    },
}

impl DatasetSpec {
    /// The workload name as used in the paper.
    pub fn family(&self) -> &'static str {
        match self {
            DatasetSpec::Unif { .. } => "UNIF",
            DatasetSpec::Gau { .. } => "GAU",
            DatasetSpec::Unb { .. } => "UNB",
            DatasetSpec::PokerHand { .. } => "POKER HAND",
            DatasetSpec::KddCup { .. } => "KDD CUP 1999",
        }
    }

    /// Number of points the specification will generate.
    pub fn n(&self) -> usize {
        match *self {
            DatasetSpec::Unif { n }
            | DatasetSpec::Gau { n, .. }
            | DatasetSpec::Unb { n, .. }
            | DatasetSpec::PokerHand { n }
            | DatasetSpec::KddCup { n } => n,
        }
    }

    /// Returns a copy of the spec scaled to `round(n * factor)` points,
    /// preserving every other parameter.  Used to run the paper's
    /// experiments at reduced scale in CI while keeping the same shape.
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scale factor must be positive"
        );
        let scale = |n: usize| ((n as f64 * factor).round() as usize).max(1);
        match *self {
            DatasetSpec::Unif { n } => DatasetSpec::Unif { n: scale(n) },
            DatasetSpec::Gau { n, k_prime } => DatasetSpec::Gau {
                n: scale(n),
                k_prime,
            },
            DatasetSpec::Unb { n, k_prime } => DatasetSpec::Unb {
                n: scale(n),
                k_prime,
            },
            DatasetSpec::PokerHand { n } => DatasetSpec::PokerHand { n: scale(n) },
            DatasetSpec::KddCup { n } => DatasetSpec::KddCup { n: scale(n) },
        }
    }

    /// Generates the point cloud for this spec and seed as a flat store at
    /// storage precision `S` — the zero-copy path the experiment harness
    /// uses.  Samples are drawn in `f64` and rounded at emission, so the
    /// geometry is the same at every precision for a given seed and there
    /// is no convert-after-generate pass.
    pub fn generate_flat_at<S: Scalar>(&self, seed: u64) -> FlatPoints<S> {
        match *self {
            DatasetSpec::Unif { n } => UnifGenerator::new(n).generate_flat_at(seed),
            DatasetSpec::Gau { n, k_prime } => GauGenerator::new(n, k_prime).generate_flat_at(seed),
            DatasetSpec::Unb { n, k_prime } => UnbGenerator::new(n, k_prime).generate_flat_at(seed),
            DatasetSpec::PokerHand { n } => PokerHandSim::with_rows(n).generate_flat_at(seed),
            DatasetSpec::KddCup { n } => KddCupSim::with_rows(n).generate_flat_at(seed),
        }
    }

    /// Generates the point cloud for this spec and seed as an `f64` flat
    /// store.
    pub fn generate_flat(&self, seed: u64) -> FlatPoints {
        self.generate_flat_at::<f64>(seed)
    }

    /// Generates the point cloud for this spec and seed as owned points.
    pub fn generate(&self, seed: u64) -> Vec<Point> {
        self.generate_flat(seed).to_points()
    }

    /// Generates the point cloud at storage precision `S` and wraps it in a
    /// Euclidean [`VecSpace`], together with the metadata the experiment
    /// harness records.  The flat buffer moves straight into the space
    /// without per-point allocations.
    pub fn build_at<S: Scalar>(&self, seed: u64) -> GeneratedDataset<S> {
        let flat = self.generate_flat_at::<S>(seed);
        GeneratedDataset {
            spec: self.clone(),
            seed,
            space: VecSpace::from_flat(flat),
        }
    }

    /// Generates the point cloud at the default `f64` precision and wraps
    /// it in a Euclidean [`VecSpace`].
    pub fn build(&self, seed: u64) -> GeneratedDataset {
        self.build_at::<f64>(seed)
    }

    /// A human-readable description including all parameters.
    pub fn describe(&self) -> String {
        match *self {
            DatasetSpec::Unif { n } => format!("UNIF (n = {n})"),
            DatasetSpec::Gau { n, k_prime } => format!("GAU (n = {n}, k' = {k_prime})"),
            DatasetSpec::Unb { n, k_prime } => format!("UNB (n = {n}, k' = {k_prime})"),
            DatasetSpec::PokerHand { n } => format!("POKER HAND (n = {n})"),
            DatasetSpec::KddCup { n } => format!("KDD CUP 1999 (n = {n})"),
        }
    }
}

/// A generated data set: the spec, the seed, and the resulting metric space
/// (at whatever storage precision it was built with).
#[derive(Clone)]
pub struct GeneratedDataset<S: Scalar = f64> {
    /// The specification the data was generated from.
    pub spec: DatasetSpec,
    /// The seed used.
    pub seed: u64,
    /// The generated points wrapped in a Euclidean metric space.
    pub space: VecSpace<Euclidean, S>,
}

impl<S: Scalar> GeneratedDataset<S> {
    /// Number of generated points.
    pub fn len(&self) -> usize {
        kcenter_metric::MetricSpace::len(&self.space)
    }

    /// Whether the data set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The storage-precision name (`"f32"` / `"f64"`), for reports.
    pub fn precision_name(&self) -> &'static str {
        S::NAME
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_reports_family_and_size() {
        assert_eq!(DatasetSpec::Unif { n: 10 }.family(), "UNIF");
        assert_eq!(DatasetSpec::Gau { n: 10, k_prime: 2 }.family(), "GAU");
        assert_eq!(DatasetSpec::Unb { n: 10, k_prime: 2 }.family(), "UNB");
        assert_eq!(DatasetSpec::PokerHand { n: 10 }.family(), "POKER HAND");
        assert_eq!(DatasetSpec::KddCup { n: 10 }.family(), "KDD CUP 1999");
        assert_eq!(DatasetSpec::KddCup { n: 123 }.n(), 123);
    }

    #[test]
    fn generate_produces_requested_sizes() {
        for spec in [
            DatasetSpec::Unif { n: 50 },
            DatasetSpec::Gau { n: 50, k_prime: 3 },
            DatasetSpec::Unb { n: 50, k_prime: 3 },
            DatasetSpec::PokerHand { n: 50 },
            DatasetSpec::KddCup { n: 50 },
        ] {
            assert_eq!(spec.generate(1).len(), 50, "{}", spec.describe());
        }
    }

    #[test]
    fn build_wraps_points_in_a_space() {
        let ds = DatasetSpec::Gau { n: 40, k_prime: 2 }.build(5);
        assert_eq!(ds.len(), 40);
        assert!(!ds.is_empty());
        assert_eq!(ds.seed, 5);
        assert_eq!(ds.spec, DatasetSpec::Gau { n: 40, k_prime: 2 });
    }

    #[test]
    fn scaled_changes_only_n() {
        let spec = DatasetSpec::Gau {
            n: 1_000_000,
            k_prime: 25,
        };
        assert_eq!(
            spec.scaled(0.01),
            DatasetSpec::Gau {
                n: 10_000,
                k_prime: 25
            }
        );
        assert_eq!(spec.scaled(1.0), spec);
        // Scaling never drops to zero points.
        assert_eq!(DatasetSpec::Unif { n: 10 }.scaled(0.001).n(), 1);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_nonpositive_factor() {
        DatasetSpec::Unif { n: 10 }.scaled(0.0);
    }

    #[test]
    fn describe_mentions_parameters() {
        let s = DatasetSpec::Gau {
            n: 200_000,
            k_prime: 25,
        }
        .describe();
        assert!(s.contains("200000") && s.contains("25"));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = DatasetSpec::Unb { n: 77, k_prime: 5 };
        assert_eq!(spec.generate(4), spec.generate(4));
        assert_ne!(spec.generate(4), spec.generate(5));
    }
}
