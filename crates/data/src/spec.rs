//! Declarative data-set specifications for the experiment harness.
//!
//! Every table and figure in the paper is defined by a workload (which
//! generator, which parameters) and an algorithm sweep.  [`DatasetSpec`]
//! captures the workload half so the bench harness and the `repro` binary
//! can describe experiments as data, and so the exact configuration ends up
//! serialised next to the measured results.

use crate::real::{KddCupSim, PokerHandSim};
use crate::synthetic::{
    DupGenerator, ExpGenerator, GauGenerator, PlantedOutlierGenerator, UnbGenerator, UnifGenerator,
};
use crate::PointGenerator;
use kcenter_metric::{Euclidean, FlatPoints, Point, Scalar, VecSpace};
use serde::{Deserialize, Serialize};

/// A declarative description of one of the paper's workloads.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DatasetSpec {
    /// UNIF: `n` points uniform in a two-dimensional square.
    Unif {
        /// Number of points.
        n: usize,
    },
    /// GAU: `n` points in `k_prime` balanced Gaussian clusters.
    Gau {
        /// Number of points.
        n: usize,
        /// Number of inherent clusters (the paper's `k'`).
        k_prime: usize,
    },
    /// UNB: like GAU but with half of the mass in one cluster.
    Unb {
        /// Number of points.
        n: usize,
        /// Number of inherent clusters.
        k_prime: usize,
    },
    /// Simulated Poker Hand training set.
    PokerHand {
        /// Number of rows (the UCI training set has 25,010).
        n: usize,
    },
    /// Simulated KDD Cup 1999 10 % sample.
    KddCup {
        /// Number of rows (the UCI 10 % sample has ~494k).
        n: usize,
    },
    /// EXP: adversarial exponential-spread clusters (aspect ratio
    /// `2^(k'-1)`), the worst case for uniform-spacing heuristics.
    Exp {
        /// Number of points.
        n: usize,
        /// Number of inherent clusters.
        k_prime: usize,
    },
    /// DUP: adversarial duplicate-heavy data — `n` points collapsed onto
    /// `distinct` exact lattice locations.
    Dup {
        /// Number of points.
        n: usize,
        /// Number of distinct locations.
        distinct: usize,
    },
    /// GAU-HD: balanced Gaussian clusters in high dimension (the d ∈
    /// {64, 128} regime where the width-pinned kernels earn their keep and
    /// grid bucketing must fall back to dense).
    HighDim {
        /// Number of points.
        n: usize,
        /// Number of inherent clusters.
        k_prime: usize,
        /// Dimension (e.g. 64 or 128).
        dim: usize,
    },
    /// GAU+OUT: Gaussian clusters plus planted far outliers, the workload
    /// for the robust with-outliers variant.
    PlantedOutliers {
        /// Number of points (including the planted outliers).
        n: usize,
        /// Number of inherent clusters.
        k_prime: usize,
        /// Number of planted outliers among the `n` points.
        outliers: usize,
    },
}

impl DatasetSpec {
    /// The workload name as used in the paper.
    pub fn family(&self) -> &'static str {
        match self {
            DatasetSpec::Unif { .. } => "UNIF",
            DatasetSpec::Gau { .. } => "GAU",
            DatasetSpec::Unb { .. } => "UNB",
            DatasetSpec::PokerHand { .. } => "POKER HAND",
            DatasetSpec::KddCup { .. } => "KDD CUP 1999",
            DatasetSpec::Exp { .. } => "EXP",
            DatasetSpec::Dup { .. } => "DUP",
            DatasetSpec::HighDim { .. } => "GAU-HD",
            DatasetSpec::PlantedOutliers { .. } => "GAU+OUT",
        }
    }

    /// Number of points the specification will generate.
    pub fn n(&self) -> usize {
        match *self {
            DatasetSpec::Unif { n }
            | DatasetSpec::Gau { n, .. }
            | DatasetSpec::Unb { n, .. }
            | DatasetSpec::PokerHand { n }
            | DatasetSpec::KddCup { n }
            | DatasetSpec::Exp { n, .. }
            | DatasetSpec::Dup { n, .. }
            | DatasetSpec::HighDim { n, .. }
            | DatasetSpec::PlantedOutliers { n, .. } => n,
        }
    }

    /// Returns a copy of the spec scaled to `round(n * factor)` points,
    /// preserving every other parameter.  Used to run the paper's
    /// experiments at reduced scale in CI while keeping the same shape.
    pub fn scaled(&self, factor: f64) -> DatasetSpec {
        assert!(
            factor > 0.0 && factor.is_finite(),
            "scale factor must be positive"
        );
        let scale = |n: usize| ((n as f64 * factor).round() as usize).max(1);
        match *self {
            DatasetSpec::Unif { n } => DatasetSpec::Unif { n: scale(n) },
            DatasetSpec::Gau { n, k_prime } => DatasetSpec::Gau {
                n: scale(n),
                k_prime,
            },
            DatasetSpec::Unb { n, k_prime } => DatasetSpec::Unb {
                n: scale(n),
                k_prime,
            },
            DatasetSpec::PokerHand { n } => DatasetSpec::PokerHand { n: scale(n) },
            DatasetSpec::KddCup { n } => DatasetSpec::KddCup { n: scale(n) },
            DatasetSpec::Exp { n, k_prime } => DatasetSpec::Exp {
                n: scale(n),
                k_prime,
            },
            DatasetSpec::Dup { n, distinct } => DatasetSpec::Dup {
                n: scale(n),
                distinct,
            },
            DatasetSpec::HighDim { n, k_prime, dim } => DatasetSpec::HighDim {
                n: scale(n),
                k_prime,
                dim,
            },
            DatasetSpec::PlantedOutliers {
                n,
                k_prime,
                outliers,
            } => DatasetSpec::PlantedOutliers {
                // Planted outliers scale with the instance so the robust
                // variant keeps the same z/n shape at reduced CI scale.
                n: scale(n),
                k_prime,
                outliers: scale(n).min(((outliers as f64 * factor).round() as usize).max(1)),
            },
        }
    }

    /// Generates the point cloud for this spec and seed as a flat store at
    /// storage precision `S` — the zero-copy path the experiment harness
    /// uses.  Samples are drawn in `f64` and rounded at emission, so the
    /// geometry is the same at every precision for a given seed and there
    /// is no convert-after-generate pass.
    pub fn generate_flat_at<S: Scalar>(&self, seed: u64) -> FlatPoints<S> {
        match *self {
            DatasetSpec::Unif { n } => UnifGenerator::new(n).generate_flat_at(seed),
            DatasetSpec::Gau { n, k_prime } => GauGenerator::new(n, k_prime).generate_flat_at(seed),
            DatasetSpec::Unb { n, k_prime } => UnbGenerator::new(n, k_prime).generate_flat_at(seed),
            DatasetSpec::PokerHand { n } => PokerHandSim::with_rows(n).generate_flat_at(seed),
            DatasetSpec::KddCup { n } => KddCupSim::with_rows(n).generate_flat_at(seed),
            DatasetSpec::Exp { n, k_prime } => ExpGenerator::new(n, k_prime).generate_flat_at(seed),
            DatasetSpec::Dup { n, distinct } => {
                DupGenerator::new(n, distinct).generate_flat_at(seed)
            }
            DatasetSpec::HighDim { n, k_prime, dim } => {
                GauGenerator::with_params(n, k_prime, dim, 100.0, 0.002).generate_flat_at(seed)
            }
            DatasetSpec::PlantedOutliers {
                n,
                k_prime,
                outliers,
            } => PlantedOutlierGenerator::new(n, k_prime, outliers).generate_flat_at(seed),
        }
    }

    /// Generates the point cloud for this spec and seed as an `f64` flat
    /// store.
    pub fn generate_flat(&self, seed: u64) -> FlatPoints {
        self.generate_flat_at::<f64>(seed)
    }

    /// Generates the point cloud for this spec and seed as owned points.
    pub fn generate(&self, seed: u64) -> Vec<Point> {
        self.generate_flat(seed).to_points()
    }

    /// Generates the point cloud at storage precision `S` and wraps it in a
    /// Euclidean [`VecSpace`], together with the metadata the experiment
    /// harness records.  The flat buffer moves straight into the space
    /// without per-point allocations.
    pub fn build_at<S: Scalar>(&self, seed: u64) -> GeneratedDataset<S> {
        let flat = self.generate_flat_at::<S>(seed);
        GeneratedDataset {
            spec: self.clone(),
            seed,
            space: VecSpace::from_flat(flat),
        }
    }

    /// Generates the point cloud at the default `f64` precision and wraps
    /// it in a Euclidean [`VecSpace`].
    pub fn build(&self, seed: u64) -> GeneratedDataset {
        self.build_at::<f64>(seed)
    }

    /// A human-readable description including all parameters.
    pub fn describe(&self) -> String {
        match *self {
            DatasetSpec::Unif { n } => format!("UNIF (n = {n})"),
            DatasetSpec::Gau { n, k_prime } => format!("GAU (n = {n}, k' = {k_prime})"),
            DatasetSpec::Unb { n, k_prime } => format!("UNB (n = {n}, k' = {k_prime})"),
            DatasetSpec::PokerHand { n } => format!("POKER HAND (n = {n})"),
            DatasetSpec::KddCup { n } => format!("KDD CUP 1999 (n = {n})"),
            DatasetSpec::Exp { n, k_prime } => format!("EXP (n = {n}, k' = {k_prime})"),
            DatasetSpec::Dup { n, distinct } => format!("DUP (n = {n}, distinct = {distinct})"),
            DatasetSpec::HighDim { n, k_prime, dim } => {
                format!("GAU-HD (n = {n}, k' = {k_prime}, d = {dim})")
            }
            DatasetSpec::PlantedOutliers {
                n,
                k_prime,
                outliers,
            } => format!("GAU+OUT (n = {n}, k' = {k_prime}, z = {outliers})"),
        }
    }
}

/// A generated data set: the spec, the seed, and the resulting metric space
/// (at whatever storage precision it was built with).
#[derive(Clone)]
pub struct GeneratedDataset<S: Scalar = f64> {
    /// The specification the data was generated from.
    pub spec: DatasetSpec,
    /// The seed used.
    pub seed: u64,
    /// The generated points wrapped in a Euclidean metric space.
    pub space: VecSpace<Euclidean, S>,
}

impl<S: Scalar> GeneratedDataset<S> {
    /// Number of generated points.
    pub fn len(&self) -> usize {
        kcenter_metric::MetricSpace::len(&self.space)
    }

    /// Whether the data set is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The storage-precision name (`"f32"` / `"f64"`), for reports.
    pub fn precision_name(&self) -> &'static str {
        S::NAME
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_reports_family_and_size() {
        assert_eq!(DatasetSpec::Unif { n: 10 }.family(), "UNIF");
        assert_eq!(DatasetSpec::Gau { n: 10, k_prime: 2 }.family(), "GAU");
        assert_eq!(DatasetSpec::Unb { n: 10, k_prime: 2 }.family(), "UNB");
        assert_eq!(DatasetSpec::PokerHand { n: 10 }.family(), "POKER HAND");
        assert_eq!(DatasetSpec::KddCup { n: 10 }.family(), "KDD CUP 1999");
        assert_eq!(DatasetSpec::KddCup { n: 123 }.n(), 123);
        assert_eq!(DatasetSpec::Exp { n: 10, k_prime: 3 }.family(), "EXP");
        assert_eq!(DatasetSpec::Dup { n: 10, distinct: 2 }.family(), "DUP");
        assert_eq!(
            DatasetSpec::HighDim {
                n: 10,
                k_prime: 2,
                dim: 64
            }
            .family(),
            "GAU-HD"
        );
        assert_eq!(
            DatasetSpec::PlantedOutliers {
                n: 10,
                k_prime: 2,
                outliers: 1
            }
            .family(),
            "GAU+OUT"
        );
    }

    #[test]
    fn generate_produces_requested_sizes() {
        for spec in [
            DatasetSpec::Unif { n: 50 },
            DatasetSpec::Gau { n: 50, k_prime: 3 },
            DatasetSpec::Unb { n: 50, k_prime: 3 },
            DatasetSpec::PokerHand { n: 50 },
            DatasetSpec::KddCup { n: 50 },
            DatasetSpec::Exp { n: 50, k_prime: 3 },
            DatasetSpec::Dup { n: 50, distinct: 5 },
            DatasetSpec::HighDim {
                n: 50,
                k_prime: 3,
                dim: 64,
            },
            DatasetSpec::PlantedOutliers {
                n: 50,
                k_prime: 3,
                outliers: 5,
            },
        ] {
            assert_eq!(spec.generate(1).len(), 50, "{}", spec.describe());
        }
    }

    #[test]
    fn high_dim_spec_generates_the_requested_dimension() {
        let flat = DatasetSpec::HighDim {
            n: 20,
            k_prime: 2,
            dim: 128,
        }
        .generate_flat(1);
        assert_eq!(flat.dim(), 128);
    }

    #[test]
    fn planted_outlier_spec_scales_z_with_n() {
        let spec = DatasetSpec::PlantedOutliers {
            n: 10_000,
            k_prime: 5,
            outliers: 100,
        };
        assert_eq!(
            spec.scaled(0.1),
            DatasetSpec::PlantedOutliers {
                n: 1_000,
                k_prime: 5,
                outliers: 10,
            }
        );
    }

    #[test]
    fn build_wraps_points_in_a_space() {
        let ds = DatasetSpec::Gau { n: 40, k_prime: 2 }.build(5);
        assert_eq!(ds.len(), 40);
        assert!(!ds.is_empty());
        assert_eq!(ds.seed, 5);
        assert_eq!(ds.spec, DatasetSpec::Gau { n: 40, k_prime: 2 });
    }

    #[test]
    fn scaled_changes_only_n() {
        let spec = DatasetSpec::Gau {
            n: 1_000_000,
            k_prime: 25,
        };
        assert_eq!(
            spec.scaled(0.01),
            DatasetSpec::Gau {
                n: 10_000,
                k_prime: 25
            }
        );
        assert_eq!(spec.scaled(1.0), spec);
        // Scaling never drops to zero points.
        assert_eq!(DatasetSpec::Unif { n: 10 }.scaled(0.001).n(), 1);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn scaled_rejects_nonpositive_factor() {
        DatasetSpec::Unif { n: 10 }.scaled(0.0);
    }

    #[test]
    fn describe_mentions_parameters() {
        let s = DatasetSpec::Gau {
            n: 200_000,
            k_prime: 25,
        }
        .describe();
        assert!(s.contains("200000") && s.contains("25"));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = DatasetSpec::Unb { n: 77, k_prime: 5 };
        assert_eq!(spec.generate(4), spec.generate(4));
        assert_ne!(spec.generate(4), spec.generate(5));
    }
}
