//! Data substrate for the parallel k-center reproduction.
//!
//! Section 7.3 of the paper evaluates on three synthetic families and a
//! collection of UCI data sets:
//!
//! * **UNIF** — `n` points uniform in a two-dimensional square.
//! * **GAU** — `k'` cluster centers uniform in the unit cube, points split
//!   uniformly at random over the clusters, Gaussian offset with σ = 1/10.
//! * **UNB** — like GAU but unbalanced: about half of the points land in a
//!   single cluster.
//! * **Poker Hand** (25,010 training rows, 10 categorical attributes) and
//!   the **KDD Cup 1999** 10 % sample (~494k rows) from the UCI repository.
//!
//! We do not ship the UCI files, so [`real::PokerHandSim`] and
//! [`real::KddCupSim`] generate seeded surrogates with the same schema and
//! the same qualitative geometry (documented in `DESIGN.md` §5).  Everything
//! is deterministic given a seed, so experiments are reproducible and the
//! paper's "three graphs of each size and type" protocol can be followed by
//! varying the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod real;
pub mod rng;
pub mod spec;
pub mod synthetic;

pub use real::{KddCupSim, PokerHandSim};
pub use spec::{DatasetSpec, GeneratedDataset};
pub use synthetic::{GauGenerator, UnbGenerator, UnifGenerator};

use kcenter_metric::{FlatPoints, Point};

/// A generator that produces a deterministic point cloud from a seed.
///
/// All paper workloads implement this trait so the experiment harness can be
/// written once and parameterised by a [`DatasetSpec`].
///
/// Generators emit the contiguous [`FlatPoints`] store directly — the
/// representation every hot scan runs against — so a million-point workload
/// is one buffer, not a million small allocations.  [`PointGenerator::generate`]
/// materialises owned [`Point`]s from it for callers that want the view
/// type.
pub trait PointGenerator {
    /// Generates the full point cloud for the given seed as a flat store.
    fn generate_flat(&self, seed: u64) -> FlatPoints;

    /// Generates the full point cloud for the given seed as owned points.
    fn generate(&self, seed: u64) -> Vec<Point> {
        self.generate_flat(seed).to_points()
    }

    /// Number of points the generator will produce.
    fn len(&self) -> usize;

    /// Whether the generator produces no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coordinate dimension of the generated points.
    fn dim(&self) -> usize;

    /// Short human-readable name used in experiment reports.
    fn name(&self) -> String;
}
