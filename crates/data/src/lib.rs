//! Data substrate for the parallel k-center reproduction.
//!
//! Section 7.3 of the paper evaluates on three synthetic families and a
//! collection of UCI data sets:
//!
//! * **UNIF** — `n` points uniform in a two-dimensional square.
//! * **GAU** — `k'` cluster centers uniform in the unit cube, points split
//!   uniformly at random over the clusters, Gaussian offset with σ = 1/10.
//! * **UNB** — like GAU but unbalanced: about half of the points land in a
//!   single cluster.
//! * **Poker Hand** (25,010 training rows, 10 categorical attributes) and
//!   the **KDD Cup 1999** 10 % sample (~494k rows) from the UCI repository.
//!
//! We do not ship the UCI files, so [`real::PokerHandSim`] and
//! [`real::KddCupSim`] generate seeded surrogates with the same schema and
//! the same qualitative geometry (documented in `DESIGN.md` §5).  Everything
//! is deterministic given a seed, so experiments are reproducible and the
//! paper's "three graphs of each size and type" protocol can be followed by
//! varying the seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod csv;
pub mod real;
pub mod rng;
pub mod spec;
pub mod synthetic;

pub use real::{KddCupSim, PokerHandSim};
pub use spec::{DatasetSpec, GeneratedDataset};
pub use synthetic::{
    DupGenerator, ExpGenerator, GauGenerator, PlantedOutlierGenerator, UnbGenerator, UnifGenerator,
};

use kcenter_metric::{FlatPoints, Point, Scalar};

/// A rounding sink the generators push raw `f64` samples into.
///
/// Every generator draws its randomness in `f64` (so the sample stream —
/// and therefore the generated geometry — is identical at every storage
/// precision for a given seed) and rounds each coordinate into the target
/// [`Scalar`] **at emission**: an `f32` workload is written as one `f32`
/// buffer directly, with no `f64`-materialise-then-convert pass.
pub struct CoordSink<S: Scalar> {
    coords: Vec<S>,
}

impl<S: Scalar> CoordSink<S> {
    /// An empty sink with room for `n` coordinates.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            coords: Vec::with_capacity(n),
        }
    }

    /// Rounds one sample into the target scalar and appends it.
    #[inline]
    pub fn push(&mut self, v: f64) {
        self.coords.push(S::from_f64(v));
    }

    /// The accumulated coordinate block.
    pub fn into_coords(self) -> Vec<S> {
        self.coords
    }
}

/// A generator that produces a deterministic point cloud from a seed.
///
/// All paper workloads implement this trait so the experiment harness can be
/// written once and parameterised by a [`DatasetSpec`].
///
/// Generators emit the contiguous [`FlatPoints`] store directly — the
/// representation every hot scan runs against — so a million-point workload
/// is one buffer, not a million small allocations, at whichever storage
/// precision the caller instantiates ([`PointGenerator::generate_flat_at`];
/// the samples are drawn in `f64` and rounded at emission, so the same seed
/// produces the same geometry at every precision).
/// [`PointGenerator::generate`] materialises owned [`Point`]s from the
/// `f64` store for callers that want the view type.
pub trait PointGenerator {
    /// Generates the full point cloud for the given seed as a flat store at
    /// storage precision `S`, rounding each coordinate once at emission.
    fn generate_flat_at<S: Scalar>(&self, seed: u64) -> FlatPoints<S>;

    /// Generates the full point cloud for the given seed as an `f64` flat
    /// store (the default precision).
    fn generate_flat(&self, seed: u64) -> FlatPoints {
        self.generate_flat_at::<f64>(seed)
    }

    /// Generates the full point cloud for the given seed as owned points.
    fn generate(&self, seed: u64) -> Vec<Point> {
        self.generate_flat(seed).to_points()
    }

    /// Number of points the generator will produce.
    fn len(&self) -> usize;

    /// Whether the generator produces no points.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Coordinate dimension of the generated points.
    fn dim(&self) -> usize;

    /// Short human-readable name used in experiment reports.
    fn name(&self) -> String;
}
