//! Minimal CSV reading and writing for point clouds.
//!
//! The real UCI data sets the paper uses are distributed as comma-separated
//! numeric files.  This module lets users swap our simulated surrogates for
//! the genuine files: every row becomes one [`Point`], non-numeric trailing
//! columns (such as the KDD Cup class label) can be skipped, and the loader
//! validates that all rows share one dimension.

use kcenter_metric::Point;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Options controlling how a CSV file is interpreted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvOptions {
    /// Skip this many header lines before parsing data rows.
    pub skip_header_lines: usize,
    /// Ignore this many trailing columns (e.g. a class label).
    pub skip_trailing_columns: usize,
    /// Silently drop columns that fail to parse as numbers instead of
    /// raising an error (useful for mixed categorical/numeric files).
    pub drop_non_numeric_columns: bool,
    /// Field delimiter, a comma by default.
    pub delimiter: char,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self {
            skip_header_lines: 0,
            skip_trailing_columns: 0,
            drop_non_numeric_columns: false,
            delimiter: ',',
        }
    }
}

/// Errors raised while loading points from CSV input.
#[derive(Debug)]
pub enum CsvError {
    /// An I/O error occurred.
    Io(std::io::Error),
    /// A field could not be parsed as a finite number.
    Parse {
        /// 1-based line number.
        line: usize,
        /// 0-based column index.
        column: usize,
        /// The offending field text.
        field: String,
    },
    /// A row had a different number of usable columns from earlier rows.
    InconsistentDimension {
        /// 1-based line number.
        line: usize,
        /// Number of columns found.
        found: usize,
        /// Number of columns expected.
        expected: usize,
    },
    /// No data rows were found.
    Empty,
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::Io(e) => write!(f, "I/O error: {e}"),
            CsvError::Parse {
                line,
                column,
                field,
            } => {
                write!(
                    f,
                    "line {line}, column {column}: cannot parse {field:?} as a finite number"
                )
            }
            CsvError::InconsistentDimension {
                line,
                found,
                expected,
            } => {
                write!(f, "line {line}: found {found} columns, expected {expected}")
            }
            CsvError::Empty => write!(f, "no data rows found"),
        }
    }
}

impl std::error::Error for CsvError {}

impl From<std::io::Error> for CsvError {
    fn from(e: std::io::Error) -> Self {
        CsvError::Io(e)
    }
}

/// Parses points from any reader using the given options.
pub fn parse_points<R: Read>(reader: R, options: &CsvOptions) -> Result<Vec<Point>, CsvError> {
    let reader = BufReader::new(reader);
    let mut points = Vec::new();
    let mut expected_dim: Option<usize> = None;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        if idx < options.skip_header_lines {
            continue;
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(options.delimiter).collect();
        let usable = fields.len().saturating_sub(options.skip_trailing_columns);
        let mut coords = Vec::with_capacity(usable);
        for (col, field) in fields[..usable].iter().enumerate() {
            match field.trim().parse::<f64>() {
                Ok(v) if v.is_finite() => coords.push(v),
                _ if options.drop_non_numeric_columns => continue,
                _ => {
                    return Err(CsvError::Parse {
                        line: idx + 1,
                        column: col,
                        field: field.to_string(),
                    })
                }
            }
        }
        if coords.is_empty() {
            continue;
        }
        match expected_dim {
            None => expected_dim = Some(coords.len()),
            Some(d) if d != coords.len() => {
                return Err(CsvError::InconsistentDimension {
                    line: idx + 1,
                    found: coords.len(),
                    expected: d,
                })
            }
            _ => {}
        }
        points.push(Point::new(coords));
    }
    if points.is_empty() {
        return Err(CsvError::Empty);
    }
    Ok(points)
}

/// Loads points from a CSV file on disk.
pub fn load_points<P: AsRef<Path>>(path: P, options: &CsvOptions) -> Result<Vec<Point>, CsvError> {
    parse_points(File::open(path)?, options)
}

/// Writes points to a writer as plain CSV (one row per point).
pub fn write_points<W: Write>(writer: W, points: &[Point]) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    for p in points {
        let row: Vec<String> = p.coords().iter().map(|c| format!("{c}")).collect();
        writeln!(w, "{}", row.join(","))?;
    }
    w.flush()
}

/// Writes points to a CSV file on disk.
pub fn save_points<P: AsRef<Path>>(path: P, points: &[Point]) -> std::io::Result<()> {
    write_points(File::create(path)?, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_rows() {
        let data = "1.0,2.0\n3.5,-4.25\n";
        let pts = parse_points(data.as_bytes(), &CsvOptions::default()).unwrap();
        assert_eq!(pts, vec![Point::xy(1.0, 2.0), Point::xy(3.5, -4.25)]);
    }

    #[test]
    fn parse_skips_header_and_blank_lines() {
        let data = "x,y\n\n1,2\n\n3,4\n";
        let opts = CsvOptions {
            skip_header_lines: 1,
            ..Default::default()
        };
        let pts = parse_points(data.as_bytes(), &opts).unwrap();
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn parse_skips_trailing_label_column() {
        let data = "1,2,normal\n3,4,attack\n";
        let opts = CsvOptions {
            skip_trailing_columns: 1,
            ..Default::default()
        };
        let pts = parse_points(data.as_bytes(), &opts).unwrap();
        assert_eq!(pts, vec![Point::xy(1.0, 2.0), Point::xy(3.0, 4.0)]);
    }

    #[test]
    fn parse_can_drop_non_numeric_columns() {
        let data = "tcp,1,2\nudp,3,4\n";
        let opts = CsvOptions {
            drop_non_numeric_columns: true,
            ..Default::default()
        };
        let pts = parse_points(data.as_bytes(), &opts).unwrap();
        assert_eq!(pts, vec![Point::xy(1.0, 2.0), Point::xy(3.0, 4.0)]);
    }

    #[test]
    fn parse_reports_bad_field() {
        let err = parse_points("1,abc\n".as_bytes(), &CsvOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            CsvError::Parse {
                line: 1,
                column: 1,
                ..
            }
        ));
        assert!(err.to_string().contains("abc"));
    }

    #[test]
    fn parse_reports_inconsistent_dimension() {
        let err = parse_points("1,2\n1,2,3\n".as_bytes(), &CsvOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            CsvError::InconsistentDimension {
                line: 2,
                found: 3,
                expected: 2
            }
        ));
    }

    #[test]
    fn parse_reports_empty_input() {
        let err = parse_points("".as_bytes(), &CsvOptions::default()).unwrap_err();
        assert!(matches!(err, CsvError::Empty));
    }

    #[test]
    fn parse_supports_alternative_delimiters() {
        let opts = CsvOptions {
            delimiter: ';',
            ..Default::default()
        };
        let pts = parse_points("1;2\n3;4\n".as_bytes(), &opts).unwrap();
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn write_then_parse_round_trips() {
        let pts = vec![Point::xyz(1.0, 2.5, -3.0), Point::xyz(0.0, 0.125, 7.0)];
        let mut buf = Vec::new();
        write_points(&mut buf, &pts).unwrap();
        let parsed = parse_points(buf.as_slice(), &CsvOptions::default()).unwrap();
        assert_eq!(parsed, pts);
    }

    #[test]
    fn save_and_load_round_trips_via_disk() {
        let dir = std::env::temp_dir().join("kcenter-data-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("points.csv");
        let pts = vec![Point::xy(1.0, 2.0), Point::xy(3.0, 4.0)];
        save_points(&path, &pts).unwrap();
        let loaded = load_points(&path, &CsvOptions::default()).unwrap();
        assert_eq!(loaded, pts);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_reports_missing_file() {
        let err = load_points(
            "/nonexistent/definitely/missing.csv",
            &CsvOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CsvError::Io(_)));
    }
}
