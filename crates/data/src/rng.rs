//! Seeded random-number helpers shared by every generator.
//!
//! The generators must be deterministic given a seed so that the paper's
//! protocol — "we generate three graphs of each size and type, and run the
//! algorithms twice over each data set, taking the average" — is exactly
//! reproducible.  All randomness flows through [`rand::rngs::StdRng`] seeded
//! from a `u64`; Gaussian offsets use the Box–Muller transform implemented
//! here so we do not need an extra distribution crate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a base seed and a stream index.
///
/// Used to give every simulated machine / cluster / iteration its own
/// independent stream while staying reproducible.  The mixing is a
/// SplitMix64 step, which is enough to decorrelate consecutive indices.
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Samples a standard normal variate using the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Draw u1 in (0, 1] to avoid ln(0).
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples a normal variate with the given mean and standard deviation.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sigma: f64) -> f64 {
    assert!(sigma >= 0.0, "standard deviation must be non-negative");
    mean + sigma * standard_normal(rng)
}

/// Samples from a (truncated) power-law on `[min, max]` with exponent
/// `alpha > 1`, used by the KDD Cup surrogate to mimic heavy-tailed traffic
/// feature values.
pub fn power_law<R: Rng + ?Sized>(rng: &mut R, min: f64, max: f64, alpha: f64) -> f64 {
    assert!(
        min > 0.0 && max > min,
        "power-law support must satisfy 0 < min < max"
    );
    assert!(alpha > 1.0, "power-law exponent must exceed 1");
    let u: f64 = rng.gen();
    let one_minus = 1.0 - alpha;
    let lo = min.powf(one_minus);
    let hi = max.powf(one_minus);
    (lo + u * (hi - lo)).powf(1.0 / one_minus)
}

/// Chooses an index in `0..weights.len()` with probability proportional to
/// the weights.  Used by the UNB generator's biased cluster assignment.
pub fn weighted_choice<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(
        !weights.is_empty(),
        "weighted_choice needs at least one weight"
    );
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must sum to a positive value");
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        assert!(w >= 0.0, "weights must be non-negative");
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_is_deterministic() {
        let a: Vec<u32> = (0..10).map(|_| seeded(42).gen()).collect();
        let b: Vec<u32> = (0..10).map(|_| seeded(42).gen()).collect();
        assert_eq!(a, b);
        let mut r1 = seeded(1);
        let mut r2 = seeded(2);
        assert_ne!(r1.gen::<u64>(), r2.gen::<u64>());
    }

    #[test]
    fn derive_seed_decorrelates_streams() {
        let s: Vec<u64> = (0..100).map(|i| derive_seed(7, i)).collect();
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 100, "derived seeds must be distinct");
    }

    #[test]
    fn standard_normal_has_roughly_zero_mean_unit_variance() {
        let mut rng = seeded(3);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean too far from 0: {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance too far from 1: {var}");
    }

    #[test]
    fn normal_respects_mean_and_sigma() {
        let mut rng = seeded(4);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 5.0, 0.1)).collect();
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.01);
        assert!(samples.iter().all(|x| (x - 5.0).abs() < 1.0));
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn normal_rejects_negative_sigma() {
        normal(&mut seeded(0), 0.0, -1.0);
    }

    #[test]
    fn power_law_stays_in_support() {
        let mut rng = seeded(5);
        for _ in 0..10_000 {
            let x = power_law(&mut rng, 1.0, 1000.0, 2.5);
            assert!((1.0..=1000.0).contains(&x));
        }
    }

    #[test]
    fn power_law_is_heavy_tailed_toward_min() {
        let mut rng = seeded(6);
        let n = 20_000;
        let below_ten = (0..n)
            .filter(|_| power_law(&mut rng, 1.0, 1000.0, 2.5) < 10.0)
            .count();
        // For alpha = 2.5 the vast majority of mass is near the minimum.
        assert!(below_ten as f64 / n as f64 > 0.9);
    }

    #[test]
    fn weighted_choice_follows_weights() {
        let mut rng = seeded(7);
        let weights = [0.5, 0.0, 0.25, 0.25];
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            counts[weighted_choice(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!((counts[0] as f64 / n as f64 - 0.5).abs() < 0.02);
        assert!((counts[2] as f64 / n as f64 - 0.25).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn weighted_choice_rejects_empty() {
        weighted_choice(&mut seeded(0), &[]);
    }
}
