//! Property-based tests for the data generators: every generator must
//! produce exactly the requested number of points, in a consistent
//! dimension, deterministically per seed, with all coordinates finite.

use kcenter_data::{DatasetSpec, DupGenerator, ExpGenerator, PointGenerator, UnifGenerator};
use kcenter_metric::Scalar;
use proptest::prelude::*;

fn small_spec() -> impl Strategy<Value = DatasetSpec> {
    prop_oneof![
        (1usize..200).prop_map(|n| DatasetSpec::Unif { n }),
        (1usize..200, 1usize..8).prop_map(|(n, k)| DatasetSpec::Gau { n, k_prime: k }),
        (1usize..200, 1usize..8).prop_map(|(n, k)| DatasetSpec::Unb { n, k_prime: k }),
        (1usize..200).prop_map(|n| DatasetSpec::PokerHand { n }),
        (1usize..200).prop_map(|n| DatasetSpec::KddCup { n }),
        (1usize..200, 1usize..12).prop_map(|(n, k)| DatasetSpec::Exp { n, k_prime: k }),
        (1usize..200, 1usize..32).prop_map(|(n, d)| DatasetSpec::Dup { n, distinct: d }),
        (
            1usize..120,
            1usize..4,
            prop_oneof![Just(64usize), Just(128usize)]
        )
            .prop_map(|(n, k, dim)| DatasetSpec::HighDim { n, k_prime: k, dim }),
        (2usize..200, 1usize..6).prop_map(|(n, k)| DatasetSpec::PlantedOutliers {
            n,
            k_prime: k,
            outliers: n / 4,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generators_produce_exactly_n_finite_points(spec in small_spec(), seed in 0u64..1000) {
        let points = spec.generate(seed);
        prop_assert_eq!(points.len(), spec.n());
        let dim = points[0].dim();
        for p in &points {
            prop_assert_eq!(p.dim(), dim);
            prop_assert!(p.coords().iter().all(|c| c.is_finite()));
        }
    }

    #[test]
    fn generation_is_deterministic(spec in small_spec(), seed in 0u64..1000) {
        prop_assert_eq!(spec.generate(seed), spec.generate(seed));
    }

    #[test]
    fn different_seeds_differ_for_nontrivial_sizes(spec in small_spec(), seed in 0u64..1000) {
        prop_assume!(spec.n() >= 5);
        // DUP draws from a tiny location set, so two seeds can legitimately
        // collide for small instances; its seed sensitivity is pinned by a
        // dedicated test below at a collision-proof size.
        prop_assume!(!matches!(spec, DatasetSpec::Dup { .. }));
        prop_assert_ne!(spec.generate(seed), spec.generate(seed.wrapping_add(1)));
    }

    #[test]
    fn scaling_preserves_family_and_adjusts_size(spec in small_spec(), factor in 0.1f64..3.0) {
        let scaled = spec.scaled(factor);
        prop_assert_eq!(scaled.family(), spec.family());
        let expected = ((spec.n() as f64 * factor).round() as usize).max(1);
        prop_assert_eq!(scaled.n(), expected);
    }

    #[test]
    fn unif_points_lie_in_the_declared_square(n in 1usize..300, side in 1.0f64..500.0, seed in 0u64..100) {
        let g = UnifGenerator::with_dim_and_side(n, 2, side);
        for p in g.generate(seed) {
            for &c in p.coords() {
                prop_assert!((0.0..=side).contains(&c));
            }
        }
    }

    #[test]
    fn adversarial_generators_respect_the_f32_coordinate_bound(
        spec in small_spec(),
        seed in 0u64..1000,
    ) {
        // Every family — including the exponential-spread and planted
        // outlier adversaries — must stay inside the f32 store's safe
        // coordinate magnitude, so squared-distance scans cannot overflow.
        let flat = spec.generate_flat_at::<f32>(seed);
        for &c in flat.coords() {
            prop_assert!(c.is_finite());
            prop_assert!((c as f64).abs() <= <f32 as Scalar>::MAX_ABS_COORD);
        }
    }

    #[test]
    fn adversarial_generators_are_bit_deterministic_per_seed(
        spec in small_spec(),
        seed in 0u64..1000,
    ) {
        // Bit-level determinism at both storage precisions, not just
        // point-set equality: the scenario harness digests center ids, so
        // the underlying coordinates must reproduce exactly.
        prop_assert!(spec.generate_flat_at::<f64>(seed) == spec.generate_flat_at::<f64>(seed));
        prop_assert!(spec.generate_flat_at::<f32>(seed) == spec.generate_flat_at::<f32>(seed));
    }

    #[test]
    fn exp_spread_is_exponential_in_k_prime(k in 2usize..12) {
        let g = ExpGenerator::new(64, k);
        let centers = g.cluster_centers();
        let norm = |p: &kcenter_metric::Point| {
            p.coords().iter().map(|x| x * x).sum::<f64>().sqrt()
        };
        // Farthest / nearest center magnitude = ratio^(k'-1) = 2^(k'-1).
        let max = centers.iter().map(&norm).fold(0.0f64, f64::max);
        let min = centers.iter().map(&norm).fold(f64::INFINITY, f64::min);
        prop_assert!((max / min - (2.0f64).powi(k as i32 - 1)).abs() < 1e-6);
    }

    #[test]
    fn dup_emits_no_more_than_distinct_locations(
        n in 1usize..400,
        distinct in 1usize..16,
        seed in 0u64..100,
    ) {
        let g = DupGenerator::new(n, distinct);
        let flat = g.generate_flat_at::<f64>(seed);
        let unique: std::collections::HashSet<Vec<u64>> = flat
            .rows()
            .map(|r| r.iter().map(|c| c.to_bits()).collect())
            .collect();
        prop_assert!(unique.len() <= distinct);
    }
}

#[test]
fn dup_is_seed_sensitive_at_collision_proof_size() {
    let g = DupGenerator::new(400, 16);
    assert_eq!(g.generate_flat_at::<f64>(3), g.generate_flat_at::<f64>(3));
    assert_ne!(g.generate_flat_at::<f64>(3), g.generate_flat_at::<f64>(4));
}
