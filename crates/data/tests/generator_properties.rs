//! Property-based tests for the data generators: every generator must
//! produce exactly the requested number of points, in a consistent
//! dimension, deterministically per seed, with all coordinates finite.

use kcenter_data::{DatasetSpec, PointGenerator, UnifGenerator};
use proptest::prelude::*;

fn small_spec() -> impl Strategy<Value = DatasetSpec> {
    prop_oneof![
        (1usize..200).prop_map(|n| DatasetSpec::Unif { n }),
        (1usize..200, 1usize..8).prop_map(|(n, k)| DatasetSpec::Gau { n, k_prime: k }),
        (1usize..200, 1usize..8).prop_map(|(n, k)| DatasetSpec::Unb { n, k_prime: k }),
        (1usize..200).prop_map(|n| DatasetSpec::PokerHand { n }),
        (1usize..200).prop_map(|n| DatasetSpec::KddCup { n }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn generators_produce_exactly_n_finite_points(spec in small_spec(), seed in 0u64..1000) {
        let points = spec.generate(seed);
        prop_assert_eq!(points.len(), spec.n());
        let dim = points[0].dim();
        for p in &points {
            prop_assert_eq!(p.dim(), dim);
            prop_assert!(p.coords().iter().all(|c| c.is_finite()));
        }
    }

    #[test]
    fn generation_is_deterministic(spec in small_spec(), seed in 0u64..1000) {
        prop_assert_eq!(spec.generate(seed), spec.generate(seed));
    }

    #[test]
    fn different_seeds_differ_for_nontrivial_sizes(spec in small_spec(), seed in 0u64..1000) {
        prop_assume!(spec.n() >= 5);
        prop_assert_ne!(spec.generate(seed), spec.generate(seed.wrapping_add(1)));
    }

    #[test]
    fn scaling_preserves_family_and_adjusts_size(spec in small_spec(), factor in 0.1f64..3.0) {
        let scaled = spec.scaled(factor);
        prop_assert_eq!(scaled.family(), spec.family());
        let expected = ((spec.n() as f64 * factor).round() as usize).max(1);
        prop_assert_eq!(scaled.n(), expected);
    }

    #[test]
    fn unif_points_lie_in_the_declared_square(n in 1usize..300, side in 1.0f64..500.0, seed in 0u64..100) {
        let g = UnifGenerator::with_dim_and_side(n, 2, side);
        for p in g.generate(seed) {
            for &c in p.coords() {
                prop_assert!((0.0..=side).contains(&c));
            }
        }
    }
}
