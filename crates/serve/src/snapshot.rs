//! Immutable query snapshots behind an atomically swapped `Arc`.
//!
//! The serve loop answers "which center, how far?" while ingestion keeps
//! folding batches.  Readers must never block the writer and must never
//! observe a half-updated center set.  Both follow from one rule: a
//! published [`CenterSnapshot`] is immutable, and the [`SnapshotCell`]
//! lock is held only long enough to clone or replace an
//! `Arc<CenterSnapshot>` — never across a distance computation.  A reader
//! that loaded version `v` keeps answering from `v` even while the writer
//! publishes `v + 1`; the next load sees `v + 1` whole.  Old or new, never
//! mixed.

use std::sync::{Arc, RwLock};

use kcenter_core::{CoresetSolution, WeightedCoreset};
use kcenter_metric::{Distance, FlatPoints, PointId, Scalar};

use crate::hash::Fnv;

/// One nearest-center answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnapshotAnswer {
    /// The nearest center as a **source-space** point id.
    pub center: PointId,
    /// Index of that center within the snapshot (`0..k`).
    pub index: usize,
    /// Certified distance from the query point to the center, computed at
    /// storage precision with the wide (`f64`) comparison kernel.
    pub distance: f64,
    /// The snapshot's triangle-inequality radius bound: every *covered
    /// source point's* distance to its assigned center is at most this.
    pub radius_bound: f64,
    /// Version of the snapshot that answered.
    pub version: u64,
}

/// An immutable, internally consistent set of centers to answer queries
/// against, stamped with the ingest version that produced it.
#[derive(Debug)]
pub struct CenterSnapshot<D: Distance, S: Scalar = f64> {
    version: u64,
    batches_done: u64,
    source_len: usize,
    dist: D,
    centers: FlatPoints<S>,
    center_ids: Vec<PointId>,
    coreset_radius: f64,
    radius_bound: f64,
    covered_fraction: f64,
    digest: u64,
}

impl<D: Distance + Clone, S: Scalar> CenterSnapshot<D, S> {
    /// An empty snapshot (version 0) — the state of a cell before the
    /// first publish.  Queries return `None`.
    pub fn empty() -> Self
    where
        D: Default,
    {
        let mut snap = Self {
            version: 0,
            batches_done: 0,
            source_len: 0,
            dist: D::default(),
            // Dimension 1 placeholder: `FlatPoints` insists on a positive
            // dimension, and query() answers `None` before ever touching
            // the (empty) rows.
            centers: FlatPoints::with_capacity(1, 0),
            center_ids: Vec::new(),
            coreset_radius: 0.0,
            radius_bound: 0.0,
            covered_fraction: 1.0,
            digest: 0,
        };
        snap.digest = snap.compute_digest();
        snap
    }

    /// Packages a solution selected on `coreset` as a query snapshot.
    ///
    /// The center rows are copied out of the coreset so the snapshot owns
    /// everything it needs — publishing never borrows from the (mutable)
    /// ingest state.
    pub fn from_solution(
        version: u64,
        batches_done: u64,
        coreset: &WeightedCoreset<D, S>,
        solution: &CoresetSolution,
    ) -> Self {
        let dim = coreset.space().dim().unwrap_or(0);
        let mut centers = FlatPoints::with_capacity(dim, solution.local_centers.len());
        for &local in &solution.local_centers {
            centers.push_row(coreset.space().flat().row(local));
        }
        let mut snap = Self {
            version,
            batches_done,
            source_len: coreset.source_len(),
            dist: coreset.space().metric().clone(),
            centers,
            center_ids: solution.centers.clone(),
            coreset_radius: solution.coreset_radius,
            radius_bound: solution.radius_bound,
            covered_fraction: solution.covered_fraction,
            digest: 0,
        };
        snap.digest = snap.compute_digest();
        snap
    }

    fn compute_digest(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(b"kcenter-snapshot-v1");
        h.write_u64(self.version);
        h.write_u64(self.batches_done);
        h.write_u64(self.source_len as u64);
        h.write(self.dist.name().as_bytes());
        h.write_u64(self.centers.dim() as u64);
        for row in self.centers.rows() {
            for &c in row {
                c.write_le_bytes_into(&mut h);
            }
        }
        for &id in &self.center_ids {
            h.write_u64(id as u64);
        }
        h.write_u64(self.coreset_radius.to_bits());
        h.write_u64(self.radius_bound.to_bits());
        h.write_u64(self.covered_fraction.to_bits());
        h.finish()
    }

    /// Version stamp (monotone per cell; 0 means "nothing published yet").
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Batches folded into the state this snapshot was selected on.
    pub fn batches_done(&self) -> u64 {
        self.batches_done
    }

    /// Number of centers.
    pub fn k(&self) -> usize {
        self.center_ids.len()
    }

    /// Source points summarised by the state behind this snapshot.
    pub fn source_len(&self) -> usize {
        self.source_len
    }

    /// The centers as source-space point ids.
    pub fn center_ids(&self) -> &[PointId] {
        &self.center_ids
    }

    /// The certified radius bound of the published solution.
    pub fn radius_bound(&self) -> f64 {
        self.radius_bound
    }

    /// Fraction of the source the certificate covers (1.0 once any dropped
    /// shards were healed by re-ingestion).
    pub fn covered_fraction(&self) -> f64 {
        self.covered_fraction
    }

    /// Content digest stamped at construction.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// Recomputes the content digest and compares it to the stamp — a
    /// tripwire for torn publication: any reader can prove the snapshot it
    /// holds is exactly one whole published state.
    pub fn verify(&self) -> bool {
        self.digest == self.compute_digest()
    }

    /// Answers a nearest-center query for a point given in `f64`
    /// coordinates.  The point is first brought to storage precision `S`
    /// (the same quantisation every stored row went through), then scanned
    /// with the wide comparison kernel, so the returned distance is
    /// certified in `f64`.  Ties break to the lower center index.
    ///
    /// Returns `None` when the snapshot is empty or the query dimension
    /// disagrees with the stored centers.
    pub fn query(&self, coords: &[f64]) -> Option<SnapshotAnswer> {
        if self.centers.is_empty() || coords.len() != self.centers.dim() {
            return None;
        }
        let q: Vec<S> = coords.iter().map(|&c| S::from_f64(c)).collect();
        let mut best_index = 0;
        let mut best = f64::INFINITY;
        for (i, row) in self.centers.rows().enumerate() {
            let d = self.dist.distance_slices(row, &q);
            if d < best {
                best = d;
                best_index = i;
            }
        }
        Some(SnapshotAnswer {
            center: self.center_ids[best_index],
            index: best_index,
            distance: best,
            radius_bound: self.radius_bound,
            version: self.version,
        })
    }
}

// `write_le_bytes` appends to a Vec; adapt it to feed the Fnv hasher
// without an intermediate allocation per row.
trait WriteLeInto {
    fn write_le_bytes_into(self, h: &mut Fnv);
}

impl<S: Scalar> WriteLeInto for S {
    fn write_le_bytes_into(self, h: &mut Fnv) {
        let mut buf = Vec::with_capacity(S::BYTE_WIDTH);
        self.write_le_bytes(&mut buf);
        h.write(&buf);
    }
}

/// The swap point between the ingest loop (single writer) and any number
/// of query threads (readers).
///
/// The lock guards only the `Arc` pointer: [`SnapshotCell::load`] clones
/// the `Arc` under a read lock and releases it before any distance work;
/// [`SnapshotCell::publish`] swaps the pointer under a write lock.  Both
/// critical sections are a few instructions, so readers never observably
/// block ingestion and vice versa.  Lock poisoning is survived by taking
/// the inner value — a panicked publisher cannot wedge the serve loop.
#[derive(Debug)]
pub struct SnapshotCell<D: Distance, S: Scalar = f64> {
    inner: RwLock<Arc<CenterSnapshot<D, S>>>,
}

impl<D: Distance + Default + Clone, S: Scalar> Default for SnapshotCell<D, S> {
    fn default() -> Self {
        Self::new()
    }
}

impl<D: Distance + Default + Clone, S: Scalar> SnapshotCell<D, S> {
    /// A cell holding the empty (version 0) snapshot.
    pub fn new() -> Self {
        Self {
            inner: RwLock::new(Arc::new(CenterSnapshot::empty())),
        }
    }
}

impl<D: Distance + Clone, S: Scalar> SnapshotCell<D, S> {
    /// The current snapshot.  The returned `Arc` stays valid (and
    /// unchanged) however many publishes happen afterwards.
    pub fn load(&self) -> Arc<CenterSnapshot<D, S>> {
        let guard = self
            .inner
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(&guard)
    }

    /// Atomically replaces the current snapshot.  Readers holding the old
    /// `Arc` keep it; new loads see the replacement.
    pub fn publish(&self, snapshot: CenterSnapshot<D, S>) {
        let mut guard = self
            .inner
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *guard = Arc::new(snapshot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_core::{FirstCenter, GonzalezCoresetConfig, SequentialSolver};
    use kcenter_data::DatasetSpec;
    use kcenter_metric::{Euclidean, VecSpace};

    fn snapshot(version: u64) -> CenterSnapshot<Euclidean, f64> {
        let flat = DatasetSpec::Gau { n: 150, k_prime: 3 }.generate_flat_at::<f64>(21);
        let space = VecSpace::from_flat(flat);
        let coreset = GonzalezCoresetConfig::new(12).build(&space).unwrap();
        let solution = coreset
            .solve(3, SequentialSolver::Gonzalez, FirstCenter::default())
            .unwrap();
        CenterSnapshot::from_solution(version, version, &coreset, &solution)
    }

    #[test]
    fn query_returns_the_nearest_center_with_the_certificate() {
        let snap = snapshot(1);
        assert!(snap.verify());
        assert_eq!(snap.k(), 3);
        // Querying a center's own coordinates must return that center at
        // distance zero.
        let row: Vec<f64> = {
            let i = 1;
            let flat = &snap.centers;
            flat.row(i).to_vec()
        };
        let ans = snap.query(&row).unwrap();
        assert_eq!(ans.index, 1);
        assert_eq!(ans.center, snap.center_ids()[1]);
        assert_eq!(ans.distance, 0.0);
        assert_eq!(ans.radius_bound, snap.radius_bound());
        assert_eq!(ans.version, 1);
        // Dimension mismatch and empty snapshots answer None, not panic.
        assert!(snap.query(&[0.0]).is_none());
        let empty = CenterSnapshot::<Euclidean, f64>::empty();
        assert!(empty.verify());
        assert!(empty.query(&[0.0, 0.0, 0.0]).is_none());
    }

    #[test]
    fn cell_swaps_whole_snapshots() {
        let cell: SnapshotCell<Euclidean, f64> = SnapshotCell::new();
        assert_eq!(cell.load().version(), 0);
        let old = cell.load();
        cell.publish(snapshot(1));
        // The reader's old Arc is untouched; a fresh load sees version 1.
        assert_eq!(old.version(), 0);
        let new = cell.load();
        assert_eq!(new.version(), 1);
        assert!(new.verify());
        cell.publish(snapshot(2));
        assert_eq!(new.version(), 1, "held snapshots never mutate");
        assert_eq!(cell.load().version(), 2);
    }

    #[test]
    fn concurrent_readers_see_whole_versions_only() {
        let cell = std::sync::Arc::new(SnapshotCell::<Euclidean, f64>::new());
        let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let cell = std::sync::Arc::clone(&cell);
            let stop = std::sync::Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut last = 0u64;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let snap = cell.load();
                    assert!(snap.verify(), "reader observed a torn snapshot");
                    assert!(snap.version() >= last, "versions must be monotone");
                    last = snap.version();
                    if snap.version() > 0 {
                        let ans = snap
                            .query(&[0.0, 0.0, 0.0])
                            .expect("published snapshot answers");
                        assert_eq!(ans.version, snap.version());
                    }
                }
                last
            }));
        }
        for v in 1..=6 {
            cell.publish(snapshot(v));
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for r in readers {
            let last = r.join().expect("reader panicked");
            assert!(last <= 6);
        }
        assert_eq!(cell.load().version(), 6);
    }
}
