//! The checkpointed ingest loop: fold batches, heal drops, persist, serve.
//!
//! Per batch the loop (1) builds a weighted coreset of the batch with the
//! existing fault-aware MapReduce builder, (2) if degrade mode dropped
//! shards, **re-ingests** the lost rows from the stream and heals the
//! summary back to full coverage (`absorb_reingested`) instead of
//! disclosing them as lost, (3) merges the batch summary into the
//! accumulated coreset and re-compresses when it exceeds the budget,
//! (4) atomically checkpoints the accumulated state, and (5) publishes a
//! fresh query snapshot.
//!
//! # Crash-consistency contract
//!
//! The checkpoint is written *after* a batch is fully folded, so a crash
//! anywhere re-runs at most one batch on resume — and because every batch
//! build is deterministic per `(seed, precision, kernel, assign)`, the
//! re-run folds the *identical* summary the crashed attempt would have.
//! The checkpoint also carries the cumulative counters, so on every
//! deterministic column — the coreset bytes, the certificate, the round
//! and re-ingestion counts — a killed-and-resumed run's final report is
//! bit-for-bit the report of an uninterrupted twin.  (Simulated and wall
//! time are *measurements* in this codebase, accumulated for reporting
//! but never gated exactly; see `ReportTolerance`.)
//!
//! Crashes are modelled deterministically with [`KillPoint`]s, composing
//! with the seeded [`FaultPlan`] machinery: `--fault-seed` decides which
//! shards drop, the kill point decides where the process dies.
//! [`KillStage::DuringCheckpoint`] dies mid-write — it leaves a torn
//! `.tmp` behind and the *previous* checkpoint intact, which is exactly
//! the window the atomic rename protocol exists for.

use std::path::{Path, PathBuf};

use kcenter_core::{
    FirstCenter, GonzalezCoresetConfig, KCenterError, SequentialSolver, WeightedCoreset,
};
use kcenter_mapreduce::{Executor, FaultConfig, FaultPlan};
use kcenter_metric::{Distance, PointId, Scalar};

use crate::checkpoint::{self, CheckpointError, CheckpointMeta};
use crate::hash::Fnv;
use crate::snapshot::{CenterSnapshot, SnapshotCell};
use crate::stream::{BatchStream, StreamConfig, StreamError};

/// Where an injected crash kills the ingest process relative to batch
/// `batch`'s checkpoint write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KillStage {
    /// After the fold, before any checkpoint bytes are written: the batch
    /// is lost and re-folded on resume.
    BeforeCheckpoint,
    /// Mid-write: a torn `.tmp` is left behind, the previous checkpoint
    /// stays intact, and resume re-folds the batch.
    DuringCheckpoint,
    /// After the rename is durable: resume continues with the next batch.
    AfterCheckpoint,
}

impl KillStage {
    /// Stable CLI name.
    pub fn name(self) -> &'static str {
        match self {
            KillStage::BeforeCheckpoint => "before-checkpoint",
            KillStage::DuringCheckpoint => "during-checkpoint",
            KillStage::AfterCheckpoint => "after-checkpoint",
        }
    }

    /// Parses a CLI name (inverse of [`KillStage::name`]).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "before-checkpoint" => Some(KillStage::BeforeCheckpoint),
            "during-checkpoint" => Some(KillStage::DuringCheckpoint),
            "after-checkpoint" => Some(KillStage::AfterCheckpoint),
            _ => None,
        }
    }
}

/// A deterministic injected crash: die at `stage` of batch `batch`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillPoint {
    /// Batch index (0-based) whose processing is interrupted.
    pub batch: usize,
    /// Where relative to that batch's checkpoint the process dies.
    pub stage: KillStage,
}

/// Full configuration of an ingest run.
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// The batched stream to fold.
    pub stream: StreamConfig,
    /// Representatives per batch summary.
    pub t: usize,
    /// Budget for the accumulated coreset: after a merge pushes the
    /// representative count above this, the state is re-compressed (the
    /// certificate widens additively; see `WeightedCoreset::recompress`).
    pub budget: usize,
    /// Simulated machines per batch build.
    pub machines: usize,
    /// Optional deterministic fault injection for the batch builds.  Each
    /// batch derives its own plan seed from the base seed, so different
    /// batches see different (but reproducible) faults.
    pub faults: Option<FaultConfig>,
    /// How cluster rounds execute.  Deliberately **not** part of the
    /// config digest: the executor is pinned as a determinism invariant,
    /// so a checkpoint written under the simulated executor may be resumed
    /// under the threaded one (and vice versa) with identical results.
    pub executor: Executor,
    /// Centers to select for the published query snapshot after each fold
    /// (clamped to the accumulated representative count).
    pub solve_k: usize,
    /// Optional deterministic crash injection.
    pub kill: Option<KillPoint>,
}

/// What an ingest run produced.
#[derive(Debug)]
pub struct IngestOutcome<D: Distance, S: Scalar = f64> {
    /// The accumulated full-stream coreset.
    pub coreset: WeightedCoreset<D, S>,
    /// Final progress meta (as persisted in the last checkpoint).
    pub meta: CheckpointMeta,
    /// `Some(b)` when the run resumed from a checkpoint with `b` batches
    /// already folded.
    pub resumed_from: Option<u64>,
    /// Batches folded by *this* run (total minus resumed).
    pub batches_folded: usize,
}

/// Ingest failures.  Every variant names what went wrong; none panic.
#[derive(Debug)]
pub enum IngestError {
    /// The stream configuration was invalid.
    Stream(StreamError),
    /// Reading or writing the checkpoint failed.
    Checkpoint(CheckpointError),
    /// A checkpoint exists but belongs to a different configuration —
    /// resuming it would silently corrupt the fold.
    ConfigMismatch {
        /// Digest stored in the checkpoint.
        stored: u64,
        /// Digest of the requested configuration.
        expected: u64,
    },
    /// A batch build or fold failed.
    Build(KCenterError),
    /// The configured [`KillPoint`] fired (the "crash").
    Killed {
        /// Batch being processed when the process died.
        batch: usize,
        /// Stage at which it died.
        stage: KillStage,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Stream(e) => write!(f, "stream: {e}"),
            IngestError::Checkpoint(e) => write!(f, "{e}"),
            IngestError::ConfigMismatch { stored, expected } => write!(
                f,
                "checkpoint belongs to a different configuration \
                 (stored digest {stored:#018x}, expected {expected:#018x})"
            ),
            IngestError::Build(e) => write!(f, "batch build: {e}"),
            IngestError::Killed { batch, stage } => {
                write!(f, "killed at batch {batch} ({})", stage.name())
            }
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Stream(e) => Some(e),
            IngestError::Checkpoint(e) => Some(e),
            IngestError::Build(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StreamError> for IngestError {
    fn from(e: StreamError) -> Self {
        IngestError::Stream(e)
    }
}

impl From<CheckpointError> for IngestError {
    fn from(e: CheckpointError) -> Self {
        IngestError::Checkpoint(e)
    }
}

impl From<KCenterError> for IngestError {
    fn from(e: KCenterError) -> Self {
        IngestError::Build(e)
    }
}

/// Derives batch `b`'s fault plan from the base plan: seeded plans get a
/// per-batch seed (so faults vary across batches but stay reproducible),
/// explicit plans apply to every batch as written (their round indices
/// restart with each batch's fresh cluster).
fn per_batch_faults(base: &FaultConfig, batch: usize) -> FaultConfig {
    let mut derived = base.clone();
    if let FaultPlan::Seeded { seed, rates } = derived.plan {
        derived.plan = FaultPlan::Seeded {
            seed: seed ^ (batch as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
            rates,
        };
    }
    derived
}

/// A resumable, checkpointed ingest run over one [`BatchStream`].
#[derive(Debug)]
pub struct Ingestor<D: Distance + Default + Clone, S: Scalar = f64> {
    config: IngestConfig,
    stream: BatchStream<D, S>,
    checkpoint_path: PathBuf,
    digest: u64,
}

impl<D: Distance + Default + Clone, S: Scalar> Ingestor<D, S> {
    /// Opens the stream and fixes the configuration digest.
    pub fn new(config: IngestConfig, checkpoint_path: &Path) -> Result<Self, IngestError> {
        if config.t == 0 {
            return Err(IngestError::Build(KCenterError::InvalidParameter {
                name: "t",
                message: "each batch summary needs at least one representative".into(),
            }));
        }
        if config.budget == 0 {
            return Err(IngestError::Build(KCenterError::InvalidParameter {
                name: "budget",
                message: "the accumulated coreset needs a positive budget".into(),
            }));
        }
        if config.solve_k == 0 {
            return Err(IngestError::Build(KCenterError::ZeroK));
        }
        let stream = BatchStream::open(&config.stream)?;
        let mut h = Fnv::new();
        h.write(b"kcenter-ingest-v1");
        h.write_u64(stream.config_digest());
        h.write_u64(config.t as u64);
        h.write_u64(config.budget as u64);
        h.write_u64(config.machines as u64);
        match &config.faults {
            None => h.write(b"fault-free"),
            Some(f) => {
                h.write(f.plan.to_text().as_bytes());
                h.write_u64(f.policy.max_attempts as u64);
                h.write(&[u8::from(f.degrade)]);
            }
        }
        let digest = h.finish();
        Ok(Self {
            config,
            stream,
            checkpoint_path: checkpoint_path.to_path_buf(),
            digest,
        })
    }

    /// The configuration digest stamped into every checkpoint.
    pub fn config_digest(&self) -> u64 {
        self.digest
    }

    /// The underlying stream (source of record for re-replication).
    pub fn stream(&self) -> &BatchStream<D, S> {
        &self.stream
    }

    /// Runs (or resumes) the ingest without publishing snapshots.
    pub fn run(&self) -> Result<IngestOutcome<D, S>, IngestError> {
        self.run_with_cell(None)
    }

    /// Runs (or resumes) the ingest, publishing a fresh [`CenterSnapshot`]
    /// to `cell` after every durable fold.
    pub fn run_with_cell(
        &self,
        cell: Option<&SnapshotCell<D, S>>,
    ) -> Result<IngestOutcome<D, S>, IngestError> {
        let total = self.stream.num_batches();
        let (mut meta, mut acc, resumed_from) =
            match checkpoint::load_if_exists::<D, S>(&self.checkpoint_path)? {
                Some((meta, coreset)) => {
                    if meta.config_digest != self.digest {
                        return Err(IngestError::ConfigMismatch {
                            stored: meta.config_digest,
                            expected: self.digest,
                        });
                    }
                    if meta.total_batches != total as u64 {
                        return Err(IngestError::ConfigMismatch {
                            stored: meta.total_batches,
                            expected: total as u64,
                        });
                    }
                    let done = meta.batches_done;
                    (meta, Some(coreset), Some(done))
                }
                None => (
                    CheckpointMeta {
                        config_digest: self.digest,
                        batches_done: 0,
                        total_batches: total as u64,
                        rounds: 0,
                        simulated_ns: 0,
                        reingested_points: 0,
                        reingested_shards: 0,
                    },
                    None,
                    None,
                ),
            };
        let start = meta.batches_done as usize;
        if let (Some(cell), Some(acc)) = (cell, acc.as_ref()) {
            // Resuming: serve the restored state immediately, before any
            // new folds — a restarted service is queryable from t=0.
            self.publish(cell, &meta, acc)?;
        }
        for b in start..total {
            let kill_at = |stage: KillStage| -> Result<(), IngestError> {
                match self.config.kill {
                    Some(kp) if kp == (KillPoint { batch: b, stage }) => {
                        Err(IngestError::Killed { batch: b, stage })
                    }
                    _ => Ok(()),
                }
            };
            let (built, rounds_delta, sim_delta, healed_points, healed_shards) =
                self.fold_one_batch(b)?;
            let mut next = match acc.take() {
                None => built,
                Some(a) => a.merge(&built)?,
            };
            if next.len() > self.config.budget {
                next = next.recompress(self.config.budget)?;
            }
            meta.batches_done = (b + 1) as u64;
            meta.rounds += rounds_delta;
            meta.simulated_ns += sim_delta;
            meta.reingested_points += healed_points;
            meta.reingested_shards += healed_shards;
            kill_at(KillStage::BeforeCheckpoint)?;
            if self.config.kill
                == Some(KillPoint {
                    batch: b,
                    stage: KillStage::DuringCheckpoint,
                })
            {
                // Simulate dying mid-write: stage a torn temp file exactly
                // as a crashed `save_atomic` would, leaving the previous
                // checkpoint untouched.
                let bytes = checkpoint::encode(&meta, &next);
                let torn = &bytes[..bytes.len() / 2];
                let tmp = checkpoint::tmp_path(&self.checkpoint_path);
                std::fs::write(&tmp, torn).map_err(|source| CheckpointError::Io {
                    op: "write",
                    path: tmp.clone(),
                    source,
                })?;
                return Err(IngestError::Killed {
                    batch: b,
                    stage: KillStage::DuringCheckpoint,
                });
            }
            checkpoint::save_atomic(&self.checkpoint_path, &meta, &next)?;
            if let Some(cell) = cell {
                self.publish(cell, &meta, &next)?;
            }
            acc = Some(next);
            kill_at(KillStage::AfterCheckpoint)?;
        }
        let coreset = acc.expect("a stream has at least one batch, so the fold ran");
        Ok(IngestOutcome {
            coreset,
            meta,
            resumed_from,
            batches_folded: total - start,
        })
    }

    /// Builds batch `b`'s summary, healing any dropped shards by
    /// re-ingesting their rows from the stream.  Returns the (full
    /// coverage) summary plus the round/time deltas and healing counts.
    #[allow(clippy::type_complexity)]
    fn fold_one_batch(
        &self,
        b: usize,
    ) -> Result<(WeightedCoreset<D, S>, u64, u128, u64, u64), IngestError> {
        let batch_space = self.stream.batch_space(b);
        let mut cfg = GonzalezCoresetConfig::new(self.config.t)
            .with_machines(self.config.machines)
            .with_executor(self.config.executor);
        if let Some(f) = &self.config.faults {
            cfg = cfg.with_faults(per_batch_faults(f, b));
        }
        let built = cfg.build(&batch_space)?;
        let mut rounds = built.stats().num_rounds() as u64;
        let mut sim = built.stats().simulated_time().as_nanos();
        if !built.is_partial() {
            return Ok((built, rounds, sim, 0, 0));
        }
        // Re-replication: the stream is the source of record, so rows a
        // dropped shard lost are simply read again and summarised with a
        // fault-free sequential build (the shard already exhausted its
        // retries; the supplement must not be allowed to drop too).
        let lost_local: Vec<PointId> = built.coverage().lost_source_ids.clone();
        let shards = built.coverage().dropped_shards.len() as u64;
        let (batch_start, _) = self.stream.batch_range(b);
        let global: Vec<PointId> = lost_local.iter().map(|&l| batch_start + l).collect();
        let rows = self.stream.rows_space(&global);
        let supplement = GonzalezCoresetConfig::new(self.config.t.min(lost_local.len()))
            .with_executor(self.config.executor)
            .build(&rows)?;
        rounds += supplement.stats().num_rounds() as u64;
        sim += supplement.stats().simulated_time().as_nanos();
        let healed = built.absorb_reingested(&supplement, &lost_local)?;
        Ok((healed, rounds, sim, lost_local.len() as u64, shards))
    }

    fn publish(
        &self,
        cell: &SnapshotCell<D, S>,
        meta: &CheckpointMeta,
        acc: &WeightedCoreset<D, S>,
    ) -> Result<(), IngestError> {
        let k = self.config.solve_k.min(acc.len());
        let solution = acc.solve(k, SequentialSolver::Gonzalez, FirstCenter::default())?;
        cell.publish(CenterSnapshot::from_solution(
            meta.batches_done,
            meta.batches_done,
            acc,
            &solution,
        ));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_data::DatasetSpec;
    use kcenter_mapreduce::{FaultKind, FaultPolicy, ScheduledFault};
    use kcenter_metric::Euclidean;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kcserve-ingest-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn config(batches: usize, kill: Option<KillPoint>) -> IngestConfig {
        IngestConfig {
            stream: StreamConfig {
                spec: DatasetSpec::Gau { n: 400, k_prime: 4 },
                seed: 33,
                batches,
            },
            t: 16,
            budget: 40,
            machines: 4,
            faults: None,
            executor: Executor::Simulated,
            solve_k: 4,
            kill,
        }
    }

    fn faulty(mut c: IngestConfig) -> IngestConfig {
        // An explicit plan keeps the drop on round 0 (the local-coreset
        // round the degrade path may drop); seeded plans can also strike
        // the single-reducer merge round, which is fatal by design.
        c.faults = Some(
            FaultConfig::new(FaultPlan::explicit(vec![ScheduledFault {
                round: 0,
                machine: 2,
                attempt: 0,
                kind: FaultKind::Crash,
            }]))
            .with_policy(FaultPolicy::with_max_attempts(1))
            .with_degrade(true),
        );
        c
    }

    #[test]
    fn folds_the_whole_stream_and_checkpoints() {
        let dir = temp_dir("whole");
        let path = dir.join("state.ckpt");
        let ing: Ingestor<Euclidean> = Ingestor::new(config(5, None), &path).unwrap();
        let out = ing.run().unwrap();
        assert_eq!(out.meta.batches_done, 5);
        assert_eq!(out.batches_folded, 5);
        assert!(out.resumed_from.is_none());
        assert_eq!(out.coreset.source_len(), 400);
        assert!(out.coreset.len() <= 40);
        assert!(!out.coreset.is_partial());
        // The final certificate really bounds the full-stream radius.
        let full = ing.stream().full_space();
        let solution = out
            .coreset
            .solve(4, SequentialSolver::Gonzalez, FirstCenter::default())
            .unwrap();
        assert!(solution.certify(&full) <= solution.radius_bound + 1e-12);
        // The checkpoint on disk is the final state.
        let (meta, restored) = checkpoint::load::<Euclidean, f64>(&path).unwrap();
        assert_eq!(meta, out.meta);
        assert_eq!(restored.to_bytes(), out.coreset.to_bytes());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kill_and_resume_matches_the_uninterrupted_twin_bit_for_bit() {
        for stage in [
            KillStage::BeforeCheckpoint,
            KillStage::DuringCheckpoint,
            KillStage::AfterCheckpoint,
        ] {
            let dir = temp_dir(stage.name());
            let twin_path = dir.join("twin.ckpt");
            let twin: Ingestor<Euclidean> =
                Ingestor::new(faulty(config(6, None)), &twin_path).unwrap();
            let twin_out = twin.run().unwrap();

            let path = dir.join("killed.ckpt");
            let kill = Some(KillPoint { batch: 3, stage });
            let killed: Ingestor<Euclidean> =
                Ingestor::new(faulty(config(6, kill)), &path).unwrap();
            let err = killed.run().unwrap_err();
            assert!(matches!(err, IngestError::Killed { batch: 3, .. }));

            let resumed: Ingestor<Euclidean> =
                Ingestor::new(faulty(config(6, None)), &path).unwrap();
            let out = resumed.run().unwrap();
            let expected_resume = match stage {
                KillStage::BeforeCheckpoint | KillStage::DuringCheckpoint => 3,
                KillStage::AfterCheckpoint => 4,
            };
            assert_eq!(out.resumed_from, Some(expected_resume), "stage {stage:?}");
            // Every deterministic column must match; simulated time is a
            // measurement (per-attempt wall timing) and is not gated.
            let deterministic = |m: &CheckpointMeta| {
                (
                    m.config_digest,
                    m.batches_done,
                    m.total_batches,
                    m.rounds,
                    m.reingested_points,
                    m.reingested_shards,
                )
            };
            assert_eq!(
                deterministic(&out.meta),
                deterministic(&twin_out.meta),
                "stage {stage:?}: meta must match"
            );
            assert_eq!(
                out.coreset.to_bytes(),
                twin_out.coreset.to_bytes(),
                "stage {stage:?}: resumed state must be bit-identical"
            );
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn faults_are_healed_by_reingestion_not_disclosed() {
        let dir = temp_dir("heal");
        let path = dir.join("state.ckpt");
        let ing: Ingestor<Euclidean> = Ingestor::new(faulty(config(6, None)), &path).unwrap();
        let out = ing.run().unwrap();
        assert!(
            out.meta.reingested_points > 0,
            "max_attempts=1 under the default rates must drop at least one shard"
        );
        assert!(!out.coreset.is_partial(), "drops must be healed, not kept");
        assert_eq!(out.coreset.coverage_fraction(), 1.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mismatched_checkpoints_are_refused() {
        let dir = temp_dir("mismatch");
        let path = dir.join("state.ckpt");
        let ing: Ingestor<Euclidean> = Ingestor::new(config(5, None), &path).unwrap();
        ing.run().unwrap();
        // Same path, different seed: the digest must not match.
        let mut other = config(5, None);
        other.stream.seed = 34;
        let other: Ingestor<Euclidean> = Ingestor::new(other, &path).unwrap();
        assert!(matches!(
            other.run().unwrap_err(),
            IngestError::ConfigMismatch { .. }
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshots_are_published_after_each_durable_fold() {
        let dir = temp_dir("publish");
        let path = dir.join("state.ckpt");
        let cell = SnapshotCell::new();
        let ing: Ingestor<Euclidean> = Ingestor::new(config(4, None), &path).unwrap();
        ing.run_with_cell(Some(&cell)).unwrap();
        let snap = cell.load();
        assert_eq!(snap.version(), 4);
        assert_eq!(snap.source_len(), 400);
        assert!(snap.verify());
        assert!(snap.query(&[0.0, 0.0, 0.0]).is_some());
        // A restart with a complete checkpoint republishes immediately.
        let cell2 = SnapshotCell::new();
        let again: Ingestor<Euclidean> = Ingestor::new(config(4, None), &path).unwrap();
        let out = again.run_with_cell(Some(&cell2)).unwrap();
        assert_eq!(out.batches_folded, 0);
        assert_eq!(cell2.load().version(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
