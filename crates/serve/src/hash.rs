//! FNV-1a 64 — the same tiny stable hash the coreset persist format and
//! the scenario harness use for digests and trailing checksums.

pub(crate) const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a 64 hasher.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(FNV_BASIS)
    }

    pub(crate) fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    pub(crate) fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// One-shot FNV-1a 64 over a byte slice.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv::new();
        h.write(b"foo");
        h.write(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }
}
