//! Durable streaming coreset service.
//!
//! The batch pipeline in [`kcenter_core::coreset`] builds one summary from
//! one resident dataset.  This crate turns that summary into a *service*:
//! points arrive in batches, each batch is summarised and folded into an
//! accumulated [`WeightedCoreset`](kcenter_core::WeightedCoreset) via the
//! mergeable-summary composition of `kcenter_core::coreset::merge`, and the
//! accumulated state survives crashes.
//!
//! Three guarantees anchor the design:
//!
//! 1. **Crash consistency.**  After every folded batch the accumulated
//!    coreset is persisted with [`checkpoint::save_atomic`] (write-temp +
//!    fsync + rename + directory fsync).  A crash at *any* instant leaves
//!    either the previous checkpoint or the new one on disk — never a torn
//!    file.  [`ingest::Ingestor`] resumes from whatever checkpoint survived
//!    and refolds only the batches after it.
//! 2. **Determinism.**  A run that is killed and resumed produces the
//!    bit-for-bit same final coreset, certificate, and round/time counters
//!    as an uninterrupted twin with the same configuration — the checkpoint
//!    carries the cumulative counters, and every batch build is a pure
//!    function of `(seed, precision, kernel, assign)`.
//! 3. **Non-blocking reads.**  Queries are answered against an immutable
//!    [`snapshot::CenterSnapshot`] behind an atomically swapped `Arc`
//!    ([`snapshot::SnapshotCell`]): readers never block ingestion and never
//!    observe a half-updated center set — old or new, never mixed.
//!
//! Dropped shards (degrade-mode builds under fault injection) are not
//! disclosed as lost: the ingest loop re-ingests the lost rows from the
//! source batch and heals the summary back to full coverage via
//! `absorb_reingested` before checkpointing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod hash;
pub mod ingest;
pub mod snapshot;
pub mod stream;

pub use checkpoint::{CheckpointError, CheckpointFormatError, CheckpointMeta};
pub use ingest::{IngestConfig, IngestError, IngestOutcome, Ingestor, KillPoint, KillStage};
pub use snapshot::{CenterSnapshot, SnapshotAnswer, SnapshotCell};
pub use stream::{BatchStream, StreamConfig, StreamError};
