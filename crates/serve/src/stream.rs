//! Deterministic batched point streams.
//!
//! A [`BatchStream`] replays a [`DatasetSpec`] as an ordered sequence of
//! contiguous batches: batch `b` holds the global source ids
//! `[start_b, start_b + len_b)`, so folding batches *in order* with
//! `WeightedCoreset::merge` (which offsets the right side by the left
//! side's `source_len`) reproduces exactly the global ids of a one-shot
//! build over the whole stream.
//!
//! The stream is also the **source of record** for re-replication: when a
//! degrade-mode batch build drops a shard, the lost rows are re-read from
//! the stream (by global id) and re-ingested, healing the summary instead
//! of disclosing the points as lost.

use kcenter_data::DatasetSpec;
use kcenter_metric::{Distance, FlatPoints, PointId, Scalar, VecSpace};

use crate::hash::Fnv;

/// Declarative description of a batched stream: which dataset, which
/// generator seed, and how many contiguous batches to split it into.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// The workload to generate (see [`DatasetSpec`]).
    pub spec: DatasetSpec,
    /// Generator seed — the same seed always replays the same stream.
    pub seed: u64,
    /// Number of contiguous batches (first `n % batches` batches get one
    /// extra point, mirroring the cluster partitioner).
    pub batches: usize,
}

/// Errors opening a [`BatchStream`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StreamError {
    /// `batches` was zero.
    ZeroBatches,
    /// More batches than points — some batch would be empty.
    TooManyBatches {
        /// Points in the dataset.
        n: usize,
        /// Batches requested.
        batches: usize,
    },
}

impl std::fmt::Display for StreamError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamError::ZeroBatches => write!(f, "a stream needs at least one batch"),
            StreamError::TooManyBatches { n, batches } => write!(
                f,
                "cannot split {n} points into {batches} non-empty batches"
            ),
        }
    }
}

impl std::error::Error for StreamError {}

/// A fully materialised deterministic stream of point batches.
///
/// Materialising the whole dataset up front keeps the stream bit-identical
/// to the batch pipeline's view of the same `DatasetSpec` and makes
/// arbitrary re-reads (resume, re-replication) O(1) per row.
#[derive(Debug, Clone)]
pub struct BatchStream<D: Distance, S: Scalar = f64> {
    flat: FlatPoints<S>,
    dist: D,
    /// `(start, len)` per batch; contiguous and covering `0..n`.
    boundaries: Vec<(usize, usize)>,
    digest: u64,
}

impl<D: Distance + Default + Clone, S: Scalar> BatchStream<D, S> {
    /// Generates the dataset and fixes the batch boundaries.
    pub fn open(config: &StreamConfig) -> Result<Self, StreamError> {
        if config.batches == 0 {
            return Err(StreamError::ZeroBatches);
        }
        let n = config.spec.n();
        if config.batches > n {
            return Err(StreamError::TooManyBatches {
                n,
                batches: config.batches,
            });
        }
        let flat = config.spec.generate_flat_at::<S>(config.seed);
        let base = n / config.batches;
        let rem = n % config.batches;
        let mut boundaries = Vec::with_capacity(config.batches);
        let mut start = 0;
        for b in 0..config.batches {
            let len = base + usize::from(b < rem);
            boundaries.push((start, len));
            start += len;
        }
        debug_assert_eq!(start, n);
        let dist = D::default();
        let mut h = Fnv::new();
        h.write(b"kcenter-stream-v1");
        h.write(config.spec.describe().as_bytes());
        h.write_u64(config.seed);
        h.write_u64(config.batches as u64);
        h.write(S::NAME.as_bytes());
        h.write(dist.name().as_bytes());
        Ok(Self {
            flat,
            dist,
            boundaries,
            digest: h.finish(),
        })
    }
}

impl<D: Distance + Clone, S: Scalar> BatchStream<D, S> {
    /// Number of batches.
    pub fn num_batches(&self) -> usize {
        self.boundaries.len()
    }

    /// Total points across all batches.
    pub fn total_len(&self) -> usize {
        self.flat.len()
    }

    /// Digest over `(workload, seed, batches, precision, distance)` — the
    /// identity a checkpoint must match to be resumable against this
    /// stream.
    pub fn config_digest(&self) -> u64 {
        self.digest
    }

    /// `(start, len)` of batch `b` in global source ids.
    pub fn batch_range(&self, b: usize) -> (usize, usize) {
        self.boundaries[b]
    }

    /// The rows of batch `b` as an owned metric space (batch-local ids
    /// `0..len`; global id = `start + local`).
    pub fn batch_space(&self, b: usize) -> VecSpace<D, S> {
        let (start, len) = self.boundaries[b];
        self.rows_space(&(start..start + len).collect::<Vec<_>>())
    }

    /// Gathers arbitrary global rows into an owned space — the
    /// re-replication read path for healing dropped shards.
    pub fn rows_space(&self, global_ids: &[PointId]) -> VecSpace<D, S> {
        let dim = self.flat.dim();
        let mut rows = FlatPoints::with_capacity(dim, global_ids.len());
        for &id in global_ids {
            rows.push_row(self.flat.row(id));
        }
        VecSpace::from_flat_with_distance(rows, self.dist.clone())
    }

    /// The whole stream as one space (for final certification scans).
    pub fn full_space(&self) -> VecSpace<D, S> {
        VecSpace::from_flat_with_distance(self.flat.clone(), self.dist.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_metric::Euclidean;

    fn spec() -> DatasetSpec {
        DatasetSpec::Gau { n: 103, k_prime: 4 }
    }

    #[test]
    fn batches_are_contiguous_and_cover_the_stream() {
        let stream: BatchStream<Euclidean> = BatchStream::open(&StreamConfig {
            spec: spec(),
            seed: 7,
            batches: 5,
        })
        .unwrap();
        assert_eq!(stream.num_batches(), 5);
        let mut expect_start = 0;
        for b in 0..5 {
            let (start, len) = stream.batch_range(b);
            assert_eq!(start, expect_start);
            // 103 = 5 * 20 + 3: first three batches get the extra point.
            assert_eq!(len, if b < 3 { 21 } else { 20 });
            expect_start += len;
        }
        assert_eq!(expect_start, stream.total_len());
    }

    #[test]
    fn batch_rows_match_the_one_shot_generation() {
        let config = StreamConfig {
            spec: spec(),
            seed: 7,
            batches: 4,
        };
        let stream: BatchStream<Euclidean> = BatchStream::open(&config).unwrap();
        let whole = config.spec.generate_flat_at::<f64>(config.seed);
        for b in 0..stream.num_batches() {
            let (start, len) = stream.batch_range(b);
            let space = stream.batch_space(b);
            for local in 0..len {
                assert_eq!(space.flat().row(local), whole.row(start + local));
            }
        }
    }

    #[test]
    fn digest_separates_every_config_axis() {
        let base = StreamConfig {
            spec: spec(),
            seed: 7,
            batches: 4,
        };
        let open = |c: &StreamConfig| BatchStream::<Euclidean>::open(c).unwrap().config_digest();
        let d = open(&base);
        assert_eq!(d, open(&base.clone()), "digest must be reproducible");
        let mut other = base.clone();
        other.seed = 8;
        assert_ne!(d, open(&other));
        let mut other = base.clone();
        other.batches = 5;
        assert_ne!(d, open(&other));
        let mut other = base.clone();
        other.spec = DatasetSpec::Gau { n: 104, k_prime: 4 };
        assert_ne!(d, open(&other));
        let f32_digest = BatchStream::<Euclidean, f32>::open(&base)
            .unwrap()
            .config_digest();
        assert_ne!(d, f32_digest, "precision is part of the stream identity");
    }

    #[test]
    fn invalid_splits_are_named_errors() {
        let zero = BatchStream::<Euclidean>::open(&StreamConfig {
            spec: spec(),
            seed: 1,
            batches: 0,
        });
        assert_eq!(zero.unwrap_err(), StreamError::ZeroBatches);
        let many = BatchStream::<Euclidean>::open(&StreamConfig {
            spec: DatasetSpec::Unif { n: 3 },
            seed: 1,
            batches: 4,
        });
        assert_eq!(
            many.unwrap_err(),
            StreamError::TooManyBatches { n: 3, batches: 4 }
        );
    }
}
