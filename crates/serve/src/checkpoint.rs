//! Atomic, versioned ingest checkpoints.
//!
//! A checkpoint file carries the accumulated coreset (the versioned
//! [`WeightedCoreset::to_bytes`] payload, itself checksummed) plus the
//! ingest progress meta needed to resume bit-identically: how many batches
//! were folded, the cumulative round / simulated-time counters, and a
//! digest of the full ingest configuration so a checkpoint can never be
//! resumed against a different stream.
//!
//! # File format (version 1, little-endian)
//!
//! ```text
//! magic            4  b"KCKP"
//! version          2  u16 = 1
//! config digest    8  u64   (stream + ingest parameters, see IngestConfig)
//! batches done     8  u64
//! total batches    8  u64
//! rounds           8  u64   cumulative MapReduce rounds charged so far
//! simulated ns    16  u128  cumulative simulated time
//! reingested pts   8  u64   points healed back via re-replication
//! reingested shards 8 u64   dropped shards that triggered re-replication
//! payload len      8  u64
//! payload          …  WeightedCoreset::to_bytes (self-describing)
//! checksum         8  u64   FNV-1a 64 over all preceding bytes
//! ```
//!
//! # Crash consistency
//!
//! [`save_atomic`] writes to `<path>.tmp`, fsyncs the file, renames it over
//! `path`, then fsyncs the parent directory.  POSIX rename atomicity means
//! a crash at any instant leaves either the old checkpoint or the new one —
//! never a torn file.  A partial `.tmp` left behind by a crash is ignored
//! (and overwritten) by the next save; loads only ever read `path`.
//!
//! # Versioning policy
//!
//! The version is checked for strict equality: readers do not guess at
//! future layouts, and old files are never silently reinterpreted.  Any
//! layout change bumps `FORMAT_VERSION`.

use std::fs::{self, File};
use std::io::Write;
use std::path::{Path, PathBuf};

use kcenter_core::{PersistError, WeightedCoreset};
use kcenter_metric::{Distance, Scalar};

use crate::hash::fnv1a64;

/// Magic bytes identifying a checkpoint file.
pub const MAGIC: [u8; 4] = *b"KCKP";
/// Current checkpoint format version (checked for strict equality).
pub const FORMAT_VERSION: u16 = 1;

/// Fixed-size header length: magic + version + digest + 6 progress fields.
const HEADER_LEN: usize = 4 + 2 + 8 + 8 + 8 + 8 + 16 + 8 + 8 + 8;

/// Ingest progress carried alongside the coreset payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointMeta {
    /// Digest of the full ingest configuration (stream identity + fold
    /// parameters); a resume refuses a checkpoint whose digest disagrees.
    pub config_digest: u64,
    /// Batches folded into the payload so far.
    pub batches_done: u64,
    /// Total batches in the stream (resume sanity check).
    pub total_batches: u64,
    /// Cumulative MapReduce rounds charged across all folded batches.
    pub rounds: u64,
    /// Cumulative simulated time (nanoseconds) across all folded batches.
    pub simulated_ns: u128,
    /// Points healed back to full coverage via re-replication.
    pub reingested_points: u64,
    /// Dropped shards whose points were re-replicated.
    pub reingested_shards: u64,
}

/// A structurally invalid checkpoint byte stream.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointFormatError {
    /// The buffer ends before `field` could be read.
    Truncated {
        /// Name of the field being decoded.
        field: &'static str,
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// The file does not start with [`MAGIC`].
    BadMagic {
        /// The four bytes found instead.
        found: [u8; 4],
    },
    /// A version this build does not speak.
    UnsupportedVersion {
        /// Version stored in the file.
        found: u16,
        /// The only version this build accepts.
        supported: u16,
    },
    /// The trailing checksum disagrees with the content.
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the content.
        computed: u64,
    },
    /// A structural invariant fails despite a valid checksum.
    Malformed {
        /// What was wrong.
        what: &'static str,
    },
    /// The embedded coreset payload failed to decode.
    Payload(PersistError),
}

impl std::fmt::Display for CheckpointFormatError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointFormatError::Truncated {
                field,
                needed,
                available,
            } => write!(
                f,
                "checkpoint truncated reading {field}: needed {needed} bytes, {available} available"
            ),
            CheckpointFormatError::BadMagic { found } => {
                write!(f, "not a checkpoint file (magic {found:02x?})")
            }
            CheckpointFormatError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported checkpoint version {found} (this build reads version {supported})"
            ),
            CheckpointFormatError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
            CheckpointFormatError::Malformed { what } => {
                write!(f, "malformed checkpoint: {what}")
            }
            CheckpointFormatError::Payload(e) => write!(f, "checkpoint payload: {e}"),
        }
    }
}

impl std::error::Error for CheckpointFormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointFormatError::Payload(e) => Some(e),
            _ => None,
        }
    }
}

/// A checkpoint operation failure, naming the file and the operation.
#[derive(Debug)]
pub enum CheckpointError {
    /// A filesystem operation failed.
    Io {
        /// Which operation (`"create"`, `"write"`, `"sync"`, `"rename"`, …).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The file exists but its contents are invalid.
    Format {
        /// The checkpoint path.
        path: PathBuf,
        /// Why the bytes were rejected.
        source: CheckpointFormatError,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io { op, path, source } => {
                write!(f, "checkpoint {op} failed for {}: {source}", path.display())
            }
            CheckpointError::Format { path, source } => {
                write!(f, "invalid checkpoint {}: {source}", path.display())
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            CheckpointError::Format { source, .. } => Some(source),
        }
    }
}

/// Serialises a checkpoint to its on-disk byte layout.
pub fn encode<D: Distance, S: Scalar>(
    meta: &CheckpointMeta,
    coreset: &WeightedCoreset<D, S>,
) -> Vec<u8> {
    let payload = coreset.to_bytes();
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len() + 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&meta.config_digest.to_le_bytes());
    out.extend_from_slice(&meta.batches_done.to_le_bytes());
    out.extend_from_slice(&meta.total_batches.to_le_bytes());
    out.extend_from_slice(&meta.rounds.to_le_bytes());
    out.extend_from_slice(&meta.simulated_ns.to_le_bytes());
    out.extend_from_slice(&meta.reingested_points.to_le_bytes());
    out.extend_from_slice(&meta.reingested_shards.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    let checksum = fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Decodes a checkpoint byte stream.  Inverse of [`encode`]; never panics
/// on hostile input.
pub fn decode<D: Distance + Default + Clone, S: Scalar>(
    bytes: &[u8],
) -> Result<(CheckpointMeta, WeightedCoreset<D, S>), CheckpointFormatError> {
    use CheckpointFormatError as E;
    if bytes.len() < 4 {
        return Err(E::Truncated {
            field: "magic",
            needed: 4,
            available: bytes.len(),
        });
    }
    let mut found = [0u8; 4];
    found.copy_from_slice(&bytes[..4]);
    if found != MAGIC {
        return Err(E::BadMagic { found });
    }
    // Once the magic matches, verify the trailing checksum before trusting
    // any field: random corruption reports as one named error instead of an
    // arbitrary downstream failure.
    if bytes.len() < HEADER_LEN + 8 {
        return Err(E::Truncated {
            field: "header",
            needed: HEADER_LEN + 8,
            available: bytes.len(),
        });
    }
    let body = &bytes[..bytes.len() - 8];
    let mut stored = [0u8; 8];
    stored.copy_from_slice(&bytes[bytes.len() - 8..]);
    let stored = u64::from_le_bytes(stored);
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(E::ChecksumMismatch { stored, computed });
    }
    let mut at: usize = 4;
    let mut take = |field: &'static str, n: usize| -> Result<&[u8], E> {
        let end = at.checked_add(n).ok_or(E::Malformed {
            what: "field length overflows",
        })?;
        if end > body.len() {
            return Err(E::Truncated {
                field,
                needed: n,
                available: body.len().saturating_sub(at),
            });
        }
        let slice = &body[at..end];
        at = end;
        Ok(slice)
    };
    let u16_of = |s: &[u8]| u16::from_le_bytes(s.try_into().expect("sized take"));
    let u64_of = |s: &[u8]| u64::from_le_bytes(s.try_into().expect("sized take"));
    let u128_of = |s: &[u8]| u128::from_le_bytes(s.try_into().expect("sized take"));

    let version = u16_of(take("version", 2)?);
    if version != FORMAT_VERSION {
        return Err(E::UnsupportedVersion {
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let meta = CheckpointMeta {
        config_digest: u64_of(take("config digest", 8)?),
        batches_done: u64_of(take("batches done", 8)?),
        total_batches: u64_of(take("total batches", 8)?),
        rounds: u64_of(take("rounds", 8)?),
        simulated_ns: u128_of(take("simulated ns", 16)?),
        reingested_points: u64_of(take("reingested points", 8)?),
        reingested_shards: u64_of(take("reingested shards", 8)?),
    };
    if meta.batches_done > meta.total_batches {
        return Err(E::Malformed {
            what: "batches done exceeds total batches",
        });
    }
    let payload_len = u64_of(take("payload length", 8)?);
    let payload_len = usize::try_from(payload_len).map_err(|_| E::Malformed {
        what: "payload length exceeds address space",
    })?;
    let payload = take("payload", payload_len)?;
    let coreset = WeightedCoreset::<D, S>::from_bytes(payload).map_err(E::Payload)?;
    if at != body.len() {
        return Err(E::Malformed {
            what: "trailing bytes after payload",
        });
    }
    Ok((meta, coreset))
}

/// The temporary sibling `save_atomic` stages writes through.
pub fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

fn io_err<'a>(
    op: &'static str,
    path: &'a Path,
) -> impl FnOnce(std::io::Error) -> CheckpointError + 'a {
    move |source| CheckpointError::Io {
        op,
        path: path.to_path_buf(),
        source,
    }
}

/// Atomically replaces the checkpoint at `path`: write `<path>.tmp`, fsync
/// it, rename over `path`, fsync the parent directory.  On any error the
/// previous checkpoint (if any) is left intact.
pub fn save_atomic<D: Distance, S: Scalar>(
    path: &Path,
    meta: &CheckpointMeta,
    coreset: &WeightedCoreset<D, S>,
) -> Result<(), CheckpointError> {
    let bytes = encode(meta, coreset);
    let tmp = tmp_path(path);
    let mut file = File::create(&tmp).map_err(io_err("create", &tmp))?;
    file.write_all(&bytes).map_err(io_err("write", &tmp))?;
    file.sync_all().map_err(io_err("sync", &tmp))?;
    drop(file);
    fs::rename(&tmp, path).map_err(io_err("rename", path))?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        // Persist the rename itself; without this a crash can forget the
        // directory entry even though the file data is safe.
        let dir_handle = File::open(dir).map_err(io_err("open directory", dir))?;
        dir_handle
            .sync_all()
            .map_err(io_err("sync directory", dir))?;
    }
    Ok(())
}

/// A decoded checkpoint: the resume meta plus the accumulated summary.
pub type LoadedCheckpoint<D, S> = (CheckpointMeta, WeightedCoreset<D, S>);

/// Loads and validates the checkpoint at `path`.
pub fn load<D: Distance + Default + Clone, S: Scalar>(
    path: &Path,
) -> Result<LoadedCheckpoint<D, S>, CheckpointError> {
    let bytes = fs::read(path).map_err(io_err("read", path))?;
    decode(&bytes).map_err(|source| CheckpointError::Format {
        path: path.to_path_buf(),
        source,
    })
}

/// Like [`load`], but a missing file is `Ok(None)` (fresh start) rather
/// than an error.
pub fn load_if_exists<D: Distance + Default + Clone, S: Scalar>(
    path: &Path,
) -> Result<Option<LoadedCheckpoint<D, S>>, CheckpointError> {
    match load(path) {
        Ok(loaded) => Ok(Some(loaded)),
        Err(CheckpointError::Io { source, .. })
            if source.kind() == std::io::ErrorKind::NotFound =>
        {
            Ok(None)
        }
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcenter_core::GonzalezCoresetConfig;
    use kcenter_data::DatasetSpec;
    use kcenter_metric::{Euclidean, VecSpace};

    fn sample() -> (CheckpointMeta, WeightedCoreset<Euclidean, f64>) {
        let flat = DatasetSpec::Gau { n: 120, k_prime: 3 }.generate_flat_at::<f64>(11);
        let space = VecSpace::from_flat(flat);
        let coreset = GonzalezCoresetConfig::new(9).build(&space).unwrap();
        let meta = CheckpointMeta {
            config_digest: 0xfeed_beef_dead_cafe,
            batches_done: 3,
            total_batches: 8,
            rounds: 9,
            simulated_ns: 123_456_789_012_345,
            reingested_points: 17,
            reingested_shards: 1,
        };
        (meta, coreset)
    }

    #[test]
    fn round_trips_byte_exact() {
        let (meta, coreset) = sample();
        let bytes = encode(&meta, &coreset);
        let (meta2, coreset2) = decode::<Euclidean, f64>(&bytes).unwrap();
        assert_eq!(meta2, meta);
        assert_eq!(encode(&meta2, &coreset2), bytes);
    }

    #[test]
    fn every_truncation_prefix_is_a_named_error() {
        let (meta, coreset) = sample();
        let bytes = encode(&meta, &coreset);
        for cut in 0..bytes.len() {
            let err = decode::<Euclidean, f64>(&bytes[..cut])
                .expect_err("truncated checkpoint must not decode");
            match err {
                CheckpointFormatError::Truncated { .. }
                | CheckpointFormatError::ChecksumMismatch { .. } => {}
                other => panic!("prefix {cut}: unexpected error {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flips_are_checksum_mismatches() {
        let (meta, coreset) = sample();
        let bytes = encode(&meta, &coreset);
        for at in (4..bytes.len()).step_by(13) {
            let mut bad = bytes.clone();
            bad[at] ^= 0x40;
            let err = decode::<Euclidean, f64>(&bad).expect_err("corrupt checkpoint must fail");
            assert!(
                matches!(err, CheckpointFormatError::ChecksumMismatch { .. }),
                "flip at {at}: got {err:?}"
            );
        }
    }

    #[test]
    fn foreign_magic_and_versions_are_rejected() {
        let (meta, coreset) = sample();
        let bytes = encode(&meta, &coreset);
        let mut wrong_magic = bytes.clone();
        wrong_magic[..4].copy_from_slice(b"NOPE");
        assert!(matches!(
            decode::<Euclidean, f64>(&wrong_magic),
            Err(CheckpointFormatError::BadMagic {
                found: [b'N', b'O', b'P', b'E']
            })
        ));
        let mut future = bytes.clone();
        future[4..6].copy_from_slice(&2u16.to_le_bytes());
        let trailing = future.len() - 8;
        let checksum = fnv1a64(&future[..trailing]);
        future[trailing..].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            decode::<Euclidean, f64>(&future),
            Err(CheckpointFormatError::UnsupportedVersion {
                found: 2,
                supported: FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn atomic_save_survives_a_stale_tmp_and_preserves_on_failure() {
        let dir = std::env::temp_dir().join(format!("kcserve-ckpt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("state.ckpt");
        let (meta, coreset) = sample();
        // A stale partial tmp (crashed mid-write) must not confuse a save.
        fs::write(tmp_path(&path), b"torn").unwrap();
        save_atomic(&path, &meta, &coreset).unwrap();
        let (loaded_meta, _) = load::<Euclidean, f64>(&path).unwrap();
        assert_eq!(loaded_meta, meta);
        // load_if_exists: missing file is a fresh start, not an error.
        let missing = dir.join("absent.ckpt");
        assert!(load_if_exists::<Euclidean, f64>(&missing)
            .unwrap()
            .is_none());
        fs::remove_dir_all(&dir).unwrap();
    }
}
