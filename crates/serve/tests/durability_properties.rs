//! Property tests for the durable serve loop (ISSUE 10 satellite):
//!
//! 1. **Resume parity** — an ingestion killed at *any* batch boundary
//!    (any batch, any kill stage) and restarted from its checkpoint
//!    reaches the bit-identical accumulated summary of the uninterrupted
//!    twin.
//! 2. **Corruption containment** — a corrupted checkpoint (bit flip or
//!    truncation) is rejected with a named error and never panics; with
//!    the original bytes restored, the resume proceeds to the twin's
//!    bit-identical state — the previous checkpoint stays usable.
//!
//! `CheckpointMeta::simulated_ns` is a *measurement* (per-attempt wall
//! time accumulated across rounds), so parity is asserted on the
//! deterministic fields only, never on timing.

use kcenter_data::DatasetSpec;
use kcenter_metric::Euclidean;
use kcenter_serve::{IngestConfig, IngestError, Ingestor, KillPoint, KillStage, StreamConfig};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Distinct checkpoint path per test case (proptest may run cases
/// concurrently in the future; cheap insurance either way).
fn temp_ckpt(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let id = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "kcenter-serve-prop-{}-{tag}-{id}.ckpt",
        std::process::id()
    ))
}

fn config(n: usize, seed: u64, batches: usize, kill: Option<KillPoint>) -> IngestConfig {
    IngestConfig {
        stream: StreamConfig {
            spec: DatasetSpec::Gau { n, k_prime: 4 },
            seed,
            batches,
        },
        t: 10,
        budget: 30,
        machines: 3,
        faults: None,
        executor: kcenter_mapreduce::Executor::Simulated,
        solve_k: 4,
        kill,
    }
}

/// Runs the uninterrupted twin, returning its accumulated summary bytes
/// and deterministic meta fields.
fn twin_state(n: usize, seed: u64, batches: usize) -> (Vec<u8>, u64, u64) {
    let path = temp_ckpt("twin");
    let _ = std::fs::remove_file(&path);
    let ingestor: Ingestor<Euclidean, f64> =
        Ingestor::new(config(n, seed, batches, None), &path).unwrap();
    let out = ingestor.run().unwrap();
    let _ = std::fs::remove_file(&path);
    (
        out.coreset.to_bytes(),
        out.meta.batches_done,
        out.meta.rounds,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Kill at every batch boundary × every kill stage, resume, and
    /// require the bit-identical accumulated state of the uninterrupted
    /// twin.  `DuringCheckpoint` leaves a torn temp file behind, so this
    /// also exercises recovery from a crash mid-write.
    #[test]
    fn resume_at_any_batch_boundary_is_bit_identical(
        n in 120usize..=240,
        seed in 0u64..1000,
        batches in 2usize..=4,
    ) {
        let (twin_bytes, twin_done, twin_rounds) = twin_state(n, seed, batches);
        for batch in 1..batches {
            for stage in [
                KillStage::BeforeCheckpoint,
                KillStage::DuringCheckpoint,
                KillStage::AfterCheckpoint,
            ] {
                let path = temp_ckpt("kill");
                let _ = std::fs::remove_file(&path);
                let kill = Some(KillPoint { batch, stage });
                let killed: Ingestor<Euclidean, f64> =
                    Ingestor::new(config(n, seed, batches, kill), &path).unwrap();
                match killed.run() {
                    Err(IngestError::Killed { batch: b, stage: s }) => {
                        prop_assert_eq!(b, batch);
                        prop_assert_eq!(s, stage);
                    }
                    other => prop_assert!(false, "expected kill, got {:?}", other.is_ok()),
                }

                let resumed: Ingestor<Euclidean, f64> =
                    Ingestor::new(config(n, seed, batches, None), &path).unwrap();
                let out = resumed.run().unwrap();
                // BeforeCheckpoint at batch 1 dies before the first
                // checkpoint ever lands, so only later kills must resume.
                if !(batch == 1 && matches!(stage, KillStage::BeforeCheckpoint)) {
                    prop_assert!(out.resumed_from.is_some(), "no checkpoint at batch {batch}");
                }
                prop_assert_eq!(
                    &out.coreset.to_bytes(),
                    &twin_bytes,
                    "kill at batch {} ({}) diverged from the twin",
                    batch,
                    stage.name()
                );
                prop_assert_eq!(out.meta.batches_done, twin_done);
                prop_assert_eq!(out.meta.rounds, twin_rounds);
                let _ = std::fs::remove_file(&path);
            }
        }
    }

    /// A corrupted checkpoint is rejected with a named error (never a
    /// panic), and the original bytes — the "previous checkpoint" a real
    /// deployment would still hold — resume to the twin's exact state.
    #[test]
    fn corrupted_checkpoints_are_rejected_and_the_original_still_resumes(
        n in 120usize..=240,
        seed in 0u64..1000,
        pos in 0.0f64..1.0,
        bit in 0u8..8,
        truncate in 0u8..2,
    ) {
        let batches = 3;
        let (twin_bytes, _, _) = twin_state(n, seed, batches);

        // Land a real checkpoint at batch 2 of 3.
        let path = temp_ckpt("corrupt");
        let _ = std::fs::remove_file(&path);
        let kill = Some(KillPoint { batch: 2, stage: KillStage::AfterCheckpoint });
        let killed: Ingestor<Euclidean, f64> =
            Ingestor::new(config(n, seed, batches, kill), &path).unwrap();
        prop_assert!(matches!(killed.run(), Err(IngestError::Killed { .. })));
        let pristine = std::fs::read(&path).unwrap();

        // Corrupt it: either truncate to a proper prefix or flip one bit.
        let mut mangled = pristine.clone();
        if truncate == 1 {
            let len = ((mangled.len() as f64) * pos) as usize;
            mangled.truncate(len);
        } else {
            let at = ((mangled.len() as f64) * pos) as usize;
            mangled[at] ^= 1 << bit;
        }
        std::fs::write(&path, &mangled).unwrap();
        let err = Ingestor::<Euclidean, f64>::new(config(n, seed, batches, None), &path)
            .and_then(|i| i.run())
            .expect_err("a corrupted checkpoint must be rejected");
        prop_assert!(
            matches!(err, IngestError::Checkpoint(_)),
            "unexpected rejection: {err}"
        );

        // The surviving previous checkpoint still resumes to the twin.
        std::fs::write(&path, &pristine).unwrap();
        let resumed: Ingestor<Euclidean, f64> =
            Ingestor::new(config(n, seed, batches, None), &path).unwrap();
        let out = resumed.run().unwrap();
        prop_assert!(out.resumed_from.is_some());
        prop_assert_eq!(&out.coreset.to_bytes(), &twin_bytes);
        let _ = std::fs::remove_file(&path);
    }
}
