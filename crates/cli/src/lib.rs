//! Library backing the `kcenter` command-line tool.
//!
//! The CLI has three subcommands:
//!
//! * `generate` — write one of the paper's workloads (UNIF, GAU, UNB, the
//!   Poker Hand or KDD Cup surrogates) to a CSV file;
//! * `solve` — run GON, MRG, EIM, or Hochbaum–Shmoys on a CSV point file
//!   and print the chosen centers, the covering radius, and (for the
//!   parallel algorithms) the round-by-round cost accounting;
//! * `info` — print basic statistics of a CSV point file (row count,
//!   dimension, bounding box, diameter estimate).
//!
//! All argument parsing and command execution lives in this library so it
//! can be unit-tested without spawning processes; `main.rs` is a thin shim.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;

pub use args::{Cli, Command, GenerateArgs, InfoArgs, ParseError, SolveArgs, SolverChoice};
pub use commands::{run, CommandError};
