//! Execution of the parsed CLI commands.

use crate::args::{
    Cli, Command, FaultArgs, GenerateArgs, InfoArgs, IngestArgs, SolveArgs, SolverChoice,
    SweepArgs, SweepBuilderChoice, SweepSource, USAGE,
};
use kcenter_bench::scenario::{center_digest, CellResult, ScenarioReport};
use kcenter_core::evaluate::{assign, cluster_sizes};
use kcenter_core::prelude::*;
use kcenter_data::csv::{load_points, save_points, CsvOptions};
use kcenter_mapreduce::{
    install_thread_budget, threads_from_env, Cluster, ClusterConfig, DegradedRun, Executor,
    ExecutorChoice, FaultConfig, FaultPlan, FaultPolicy, JobStats,
};
use kcenter_metric::grid;
use kcenter_metric::kernel::simd;
use kcenter_metric::{
    AssignChoice, BoundingBox, Euclidean, FlatPoints, KernelBackend, KernelChoice, MetricSpace,
    PointId, Precision, Scalar, VecSpace,
};
use kcenter_serve::{IngestConfig, IngestError, Ingestor, SnapshotCell, StreamConfig};
use std::fmt;
use std::io::Write;
use std::path::Path;
use std::time::Duration;

/// Errors surfaced to the CLI user.
#[derive(Debug)]
pub enum CommandError {
    /// Reading or parsing the input CSV failed.
    Csv(kcenter_data::csv::CsvError),
    /// Writing an output file failed.
    Io(std::io::Error),
    /// The clustering algorithm reported an error.
    Algorithm(KCenterError),
    /// The checkpointed ingest loop reported an error.
    Ingest(IngestError),
}

impl fmt::Display for CommandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommandError::Csv(e) => write!(f, "CSV error: {e}"),
            CommandError::Io(e) => write!(f, "I/O error: {e}"),
            CommandError::Algorithm(e) => write!(f, "algorithm error: {e}"),
            CommandError::Ingest(e) => write!(f, "ingest error: {e}"),
        }
    }
}

impl std::error::Error for CommandError {}

impl From<kcenter_data::csv::CsvError> for CommandError {
    fn from(e: kcenter_data::csv::CsvError) -> Self {
        CommandError::Csv(e)
    }
}

impl From<std::io::Error> for CommandError {
    fn from(e: std::io::Error) -> Self {
        CommandError::Io(e)
    }
}

impl From<KCenterError> for CommandError {
    fn from(e: KCenterError) -> Self {
        CommandError::Algorithm(e)
    }
}

impl From<IngestError> for CommandError {
    fn from(e: IngestError) -> Self {
        CommandError::Ingest(e)
    }
}

/// Runs the parsed command, writing human-readable output to `out`.
pub fn run<W: Write>(cli: &Cli, out: &mut W) -> Result<(), CommandError> {
    match &cli.command {
        Command::Help => {
            writeln!(out, "{USAGE}")?;
            Ok(())
        }
        Command::Generate(args) => generate(args, out),
        Command::Solve(args) => solve(args, out),
        Command::Sweep(args) => sweep(args, out),
        Command::Ingest(args) => ingest(args, out),
        Command::Info(args) => info(args, out),
    }
}

fn generate<W: Write>(args: &GenerateArgs, out: &mut W) -> Result<(), CommandError> {
    let points = args.spec.generate(args.seed);
    save_points(Path::new(&args.output), &points)?;
    writeln!(
        out,
        "wrote {} points ({}), seed {}, to {}",
        points.len(),
        args.spec.describe(),
        args.seed,
        args.output
    )?;
    Ok(())
}

fn load_space<S: Scalar>(
    path: &str,
    skip_columns: usize,
) -> Result<VecSpace<Euclidean, S>, CommandError> {
    let options = CsvOptions {
        skip_trailing_columns: skip_columns,
        ..Default::default()
    };
    let points = load_points(Path::new(path), &options)?;
    // The flat store rejects coordinates beyond the storage scalar's safe
    // magnitude (squared distances would overflow) with a panic on the
    // `from_points` path; surface a named error to the CLI user instead.
    for p in &points {
        if let Some(&c) = p.coords().iter().find(|c| c.abs() > S::MAX_ABS_COORD) {
            return Err(CommandError::Algorithm(KCenterError::InvalidParameter {
                name: "precision",
                message: format!(
                    "coordinate {c} exceeds the {} storage limit {:e}; \
                     rerun with --precision f64",
                    S::NAME,
                    S::MAX_ABS_COORD
                ),
            }));
        }
    }
    Ok(VecSpace::from_flat(FlatPoints::from_points(&points)))
}

/// Resolves and installs the kernel backend for this run: the `--kernel`
/// flag wins, otherwise the `KCENTER_KERNEL` environment variable, otherwise
/// `auto`.  Unknown names and unavailable backends surface as the named
/// `kernel` parameter error rather than a deep panic.
fn apply_kernel(flag: Option<KernelChoice>) -> Result<KernelBackend, CommandError> {
    let named = |e: kcenter_metric::KernelSelectError| {
        CommandError::Algorithm(KCenterError::InvalidParameter {
            name: "kernel",
            message: e.to_string(),
        })
    };
    let choice = match flag {
        Some(c) => c,
        None => KernelChoice::from_env().map_err(named)?,
    };
    let backend = choice.resolve().map_err(named)?;
    simd::set_active(backend).map_err(named)?;
    Ok(backend)
}

/// Resolves and installs the assignment arm for this run: the `--assign`
/// flag wins, otherwise the `KCENTER_ASSIGN` environment variable,
/// otherwise `auto`.  Unknown environment values surface as the named
/// `assign` parameter error rather than a deep panic.  Also zeroes the
/// scan telemetry so [`report_assign_scans`] accounts for this command
/// alone.
fn apply_assign(flag: Option<AssignChoice>) -> Result<AssignChoice, CommandError> {
    let choice = match flag {
        Some(c) => c,
        None => AssignChoice::from_env().map_err(|e| {
            CommandError::Algorithm(KCenterError::InvalidParameter {
                name: "assign",
                message: e.to_string(),
            })
        })?,
    };
    grid::set_choice(choice);
    grid::reset_scan_counts();
    Ok(choice)
}

/// Resolves and installs the cluster executor for this run: the
/// `--executor` flag wins, otherwise the `KCENTER_EXECUTOR` environment
/// variable, otherwise the paper's simulated mode.  The worker budget is
/// resolved `--threads`, then `KCENTER_THREADS`, then the host's available
/// parallelism; an explicit budget is also installed as the rayon
/// stand-in's thread override so the chunked `par_*` kernels honour it
/// regardless of executor.  Results are executor-invariant — only the
/// wall-clock accounting changes.
fn apply_executor(
    flag: Option<ExecutorChoice>,
    threads_flag: Option<usize>,
) -> Result<Executor, CommandError> {
    let named = |e: kcenter_mapreduce::ExecutorSelectError| {
        CommandError::Algorithm(KCenterError::InvalidParameter {
            name: "executor",
            message: e.to_string(),
        })
    };
    let choice = match flag {
        Some(c) => c,
        None => ExecutorChoice::from_env().map_err(named)?,
    };
    let threads = match threads_flag {
        Some(n) => Some(n),
        None => threads_from_env().map_err(named)?,
    };
    if let Some(n) = threads {
        install_thread_budget(n);
    }
    Ok(choice.resolve(threads))
}

/// Prints which assignment arm the scans actually ran on — a pinned `grid`
/// can still fall back to dense per scan (non-Euclidean surrogate, missing
/// coordinates, degenerate extents), and `auto` decides per shape, so the
/// request alone does not tell the user what executed.
fn report_assign_scans<W: Write>(out: &mut W) -> Result<(), CommandError> {
    let (grid_scans, dense_scans) = grid::scan_counts();
    writeln!(
        out,
        "assignment scans: {grid_scans} grid, {dense_scans} dense"
    )?;
    Ok(())
}

/// Assembles the [`FaultConfig`] requested by `--fault-plan`/`--fault-seed`
/// plus the policy flags, or `None` for a fault-free run.  Unreadable or
/// malformed plan files surface as named errors, not panics.
fn build_fault_config(args: &FaultArgs) -> Result<Option<FaultConfig>, CommandError> {
    let plan = if let Some(path) = &args.plan_file {
        let text = std::fs::read_to_string(path)?;
        let plan = FaultPlan::parse_text(&text).map_err(|e| {
            CommandError::Algorithm(KCenterError::InvalidParameter {
                name: "fault-plan",
                message: format!("{path}: {e}"),
            })
        })?;
        Some(plan)
    } else {
        args.fault_seed.map(FaultPlan::seeded)
    };
    let Some(plan) = plan else { return Ok(None) };
    let policy = match args.max_attempts {
        Some(attempts) => FaultPolicy::with_max_attempts(attempts),
        None => FaultPolicy::default(),
    };
    Ok(Some(
        FaultConfig::new(plan)
            .with_policy(policy)
            .with_degrade(args.degrade),
    ))
}

/// Prints the job's fault accounting next to the round accounting: the
/// summary line plus every injected/observed event, grouped by round.
/// Quiet jobs (no faults fired) print nothing.
fn report_fault_log<W: Write>(stats: &JobStats, out: &mut W) -> Result<(), CommandError> {
    let summary = stats.fault_summary();
    if summary.is_quiet() {
        return Ok(());
    }
    writeln!(out, "fault injection: {summary}")?;
    for round in stats.rounds() {
        for event in round.faults.events() {
            writeln!(out, "  round {}: {event}", round.round + 1)?;
        }
    }
    Ok(())
}

/// Prints the partial-result disclosure of a degraded run: what fraction
/// of the input the reported radius actually speaks for, and the
/// provenance of every dropped shard.
fn report_degraded<W: Write>(degraded: &DegradedRun, out: &mut W) -> Result<(), CommandError> {
    writeln!(
        out,
        "DEGRADED RESULT: certificate covers {} of {} points ({:.1}%); \
         the radius speaks only for the surviving subset",
        degraded.covered_points,
        degraded.total_points,
        degraded.coverage_fraction() * 100.0,
    )?;
    for shard in &degraded.dropped_shards {
        writeln!(out, "  dropped: {shard}")?;
    }
    Ok(())
}

fn solve<W: Write>(args: &SolveArgs, out: &mut W) -> Result<(), CommandError> {
    let kernel = apply_kernel(args.kernel)?;
    writeln!(out, "kernel backend: {kernel}")?;
    let assign_arm = apply_assign(args.assign)?;
    writeln!(out, "assignment arm: {assign_arm}")?;
    let executor = apply_executor(args.executor, args.threads)?;
    writeln!(out, "cluster executor: {executor}")?;
    // Dispatch into the monomorphised storage-precision stack once, here;
    // everything below runs entirely at the chosen precision (with the
    // covering radius still certified in f64 by the evaluation layer).
    match args.precision {
        Precision::F64 => solve_at::<f64, W>(args, executor, out)?,
        Precision::F32 => solve_at::<f32, W>(args, executor, out)?,
    }
    report_assign_scans(out)
}

fn solve_at<S: Scalar, W: Write>(
    args: &SolveArgs,
    executor: Executor,
    out: &mut W,
) -> Result<(), CommandError> {
    let space = load_space::<S>(&args.input, args.skip_columns)?;
    writeln!(
        out,
        "loaded {} points of dimension {} from {} ({} storage)",
        space.len(),
        space.dim().unwrap_or(0),
        args.input,
        S::NAME
    )?;

    let faults = build_fault_config(&args.faults)?;
    if faults.is_some()
        && matches!(
            args.algorithm,
            SolverChoice::Gon | SolverChoice::HochbaumShmoys
        )
    {
        return Err(CommandError::Algorithm(KCenterError::InvalidParameter {
            name: "fault-plan",
            message: "fault injection targets the MapReduce algorithms; \
                      use mrg or eim (gon and hs run sequentially)"
                .into(),
        }));
    }

    let (centers, radius, degraded): (Vec<PointId>, f64, Option<DegradedRun>) = match args.algorithm
    {
        SolverChoice::Gon => {
            let sol = GonzalezConfig::new(args.k)
                .with_parallel_scan(true)
                .solve(&space)?;
            writeln!(out, "GON (sequential 2-approximation)")?;
            (sol.centers, sol.radius, None)
        }
        SolverChoice::HochbaumShmoys => {
            let sol = HochbaumShmoysConfig::new(args.k).solve(&space)?;
            writeln!(out, "Hochbaum-Shmoys (sequential 2-approximation)")?;
            (sol.centers, sol.radius, None)
        }
        SolverChoice::Mrg => {
            let mut config = MrgConfig::new(args.k)
                .with_machines(args.machines)
                .with_unchecked_capacity()
                .with_first_center(FirstCenter::Seeded(args.seed))
                .with_executor(executor);
            if let Some(faults) = faults {
                config = config.with_faults(faults);
            }
            let result = config.run(&space)?;
            writeln!(
                out,
                "MRG on {} machines: {} MapReduce rounds, proven factor {}, simulated time {:?}, wall time {:?} on {}",
                args.machines,
                result.mapreduce_rounds,
                result.approximation_factor,
                result.stats.simulated_time(),
                result.stats.wall_time(),
                executor,
            )?;
            for round in result.stats.rounds() {
                writeln!(
                    out,
                    "  round {}: {} ({} machines, {} items, max machine time {:?}, wall {:?})",
                    round.round + 1,
                    round.label,
                    round.machines_used,
                    round.items_in,
                    round.simulated_time,
                    round.wall_time,
                )?;
            }
            report_fault_log(&result.stats, out)?;
            (
                result.solution.centers,
                result.solution.radius,
                result.degraded,
            )
        }
        SolverChoice::Eim => {
            let mut config = EimConfig::new(args.k)
                .with_machines(args.machines)
                .with_phi(args.phi)
                .with_epsilon(args.epsilon)
                .with_seed(args.seed)
                .with_executor(executor);
            if let Some(faults) = faults {
                config = config.with_faults(faults);
            }
            let result = config.run(&space)?;
            writeln!(
                out,
                "EIM (phi = {}, epsilon = {}) on {} machines: {} iterations, {} MapReduce rounds, sample size {}{}",
                args.phi,
                args.epsilon,
                args.machines,
                result.iterations,
                result.mapreduce_rounds,
                result.sample_size,
                if result.fell_back_to_sequential { " (fell back to sequential GON)" } else { "" },
            )?;
            writeln!(
                out,
                "  simulated time {:?}, wall time {:?} on {}",
                result.stats.simulated_time(),
                result.stats.wall_time(),
                executor,
            )?;
            report_fault_log(&result.stats, out)?;
            (
                result.solution.centers,
                result.solution.radius,
                result.degraded,
            )
        }
    };

    match &degraded {
        None => writeln!(out, "covering radius (solution value): {radius:.6}")?,
        Some(d) => {
            writeln!(
                out,
                "covering radius over the surviving subset: {radius:.6}"
            )?;
            report_degraded(d, out)?;
        }
    }
    writeln!(out, "centers (point indices): {centers:?}")?;

    if args.outliers > 0 {
        let eval = evaluate_with_outliers(&space, &centers, args.outliers);
        writeln!(
            out,
            "with-outliers objective (z = {}): kept radius {:.6} over {} points",
            eval.z(),
            eval.radius,
            space.len() - eval.z(),
        )?;
        writeln!(
            out,
            "  dropped point ids (farthest first): {:?}",
            eval.dropped
        )?;
    }

    if let Some(path) = &args.assignment_out {
        let assignment = assign(&space, &centers);
        let sizes = cluster_sizes(&assignment, centers.len());
        let mut file = std::fs::File::create(path)?;
        writeln!(file, "point,center_index,center_point_id")?;
        for (point, &c) in assignment.iter().enumerate() {
            writeln!(file, "{point},{c},{}", centers[c])?;
        }
        writeln!(
            out,
            "wrote assignment of {} points to {path}",
            assignment.len()
        )?;
        // `sizes` has one entry per center and k >= 1 is enforced above,
        // but degrade to 0 rather than panicking if that ever changes.
        writeln!(
            out,
            "cluster sizes: min {}, max {}",
            sizes.iter().min().copied().unwrap_or(0),
            sizes.iter().max().copied().unwrap_or(0)
        )?;
    }
    Ok(())
}

fn sweep<W: Write>(args: &SweepArgs, out: &mut W) -> Result<(), CommandError> {
    let kernel = apply_kernel(args.kernel)?;
    writeln!(out, "kernel backend: {kernel}")?;
    let assign_arm = apply_assign(args.assign)?;
    writeln!(out, "assignment arm: {assign_arm}")?;
    let executor = apply_executor(args.executor, args.threads)?;
    writeln!(out, "cluster executor: {executor}")?;
    match args.precision {
        Precision::F64 => sweep_at::<f64, W>(args, executor, out)?,
        Precision::F32 => sweep_at::<f32, W>(args, executor, out)?,
    }
    report_assign_scans(out)
}

fn format_ms(d: Duration) -> String {
    format!("{:.1}ms", d.as_secs_f64() * 1e3)
}

fn sweep_at<S: Scalar, W: Write>(
    args: &SweepArgs,
    executor: Executor,
    out: &mut W,
) -> Result<(), CommandError> {
    let space: VecSpace<Euclidean, S> = match &args.source {
        SweepSource::Csv { path, skip_columns } => load_space::<S>(path, *skip_columns)?,
        SweepSource::Generated(spec) => spec.build_at::<S>(args.seed).space,
    };
    writeln!(
        out,
        "sweep over {} points of dimension {} ({} storage), grid {} k x {} phi",
        space.len(),
        space.dim().unwrap_or(0),
        S::NAME,
        args.ks.len(),
        args.phis.len(),
    )?;

    // The parser guarantees a non-empty --ks list; surface a named error
    // instead of panicking if a caller constructs SweepArgs by hand.
    let k_max = *args.ks.iter().max().ok_or_else(|| {
        CommandError::Algorithm(KCenterError::InvalidParameter {
            name: "ks",
            message: "sweep needs at least one k value".into(),
        })
    })?;
    let phi_max = args.phis.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let faults = build_fault_config(&args.faults)?;

    // ---- Phase 1: build the coreset exactly once.
    let coreset: WeightedCoreset<Euclidean, S> = match args.builder {
        SweepBuilderChoice::Gonzalez => {
            // Automatic size: 20 representatives per requested center,
            // never more than the instance itself (clamp would panic when
            // k_max exceeds n — min/max keeps t in [1, n] instead).
            let t = if args.coreset_size > 0 {
                args.coreset_size
            } else {
                (20 * k_max).min(space.len()).max(1)
            };
            let mut config = GonzalezCoresetConfig::new(t)
                .with_machines(args.machines)
                .with_first_center(FirstCenter::Seeded(args.seed))
                .with_executor(executor);
            if let Some(faults) = faults {
                config = config.with_faults(faults);
            }
            config.build(&space)?
        }
        SweepBuilderChoice::Eim => {
            let mut config = EimConfig::new(k_max)
                .with_machines(args.machines)
                .with_epsilon(args.epsilon)
                .with_phi(phi_max)
                .with_seed(args.seed)
                .with_executor(executor);
            if let Some(faults) = faults {
                config = config.with_faults(faults);
            }
            config.build_coreset(&space)?
        }
    };
    let build_rounds = coreset.stats().num_rounds_labelled("coreset");
    let build_simulated = coreset.stats().simulated_time();
    let build_wall = coreset.stats().wall_time();
    writeln!(
        out,
        "coreset: builder {}, {} representatives covering {} points, construction radius {:.6}",
        coreset.builder().name(),
        coreset.len(),
        coreset.total_weight(),
        coreset.construction_radius(),
    )?;
    if coreset.is_partial() {
        writeln!(
            out,
            "PARTIAL CORESET: certificate covers {} of {} source points ({:.1}%); \
             all radii below speak only for the surviving subset",
            coreset.coverage().covered_source_len,
            coreset.source_len(),
            coreset.coverage_fraction() * 100.0,
        )?;
        for shard in &coreset.coverage().dropped_shards {
            writeln!(out, "  dropped: {shard}")?;
        }
    }
    writeln!(
        out,
        "coreset built once: {build_rounds} MapReduce rounds, simulated {}, wall {} on {}",
        format_ms(build_simulated),
        format_ms(build_wall),
        executor,
    )?;

    // ---- Phase 2: one cheap weighted solve per k, charged to the same
    // accounting so the round labels prove the build was not repeated.
    let mut stats: JobStats = coreset.stats().clone();
    let mut solve_cluster =
        Cluster::unchecked(ClusterConfig::new(args.machines, coreset.len().max(1)))
            .with_executor(executor);
    let mut per_k: Vec<(usize, CoresetSolution, f64)> = Vec::with_capacity(args.ks.len());
    for &k in &args.ks {
        let sol = coreset.solve_on_cluster(
            k,
            SequentialSolver::Gonzalez,
            FirstCenter::Seeded(args.seed),
            &mut solve_cluster,
            &format!("sweep solve k={k}"),
        )?;
        // For a partial coreset the certificate only speaks for the
        // surviving points, so certify over exactly that subset.
        let certified = coreset.certify_covered(&space, &sol);
        per_k.push((k, sol, certified));
    }
    let solve_stats = solve_cluster.into_stats();
    let solve_simulated = solve_stats.simulated_time();
    stats.extend(solve_stats);

    // ---- Phase 3: the grid report, with optional per-cell EIM reruns.
    let mut baseline_simulated = Duration::ZERO;
    let scope = if coreset.is_partial() {
        " over survivors"
    } else {
        ""
    };
    for (k, sol, certified) in &per_k {
        for &phi in &args.phis {
            let coreset_cell = format!(
                "k={k:>4} phi={phi:>4}: certified radius{scope} {certified:.6} (coreset {:.6}, bound {:.6})",
                sol.coreset_radius, sol.radius_bound
            );
            if args.baseline {
                let rerun = EimConfig::new(*k)
                    .with_machines(args.machines)
                    .with_epsilon(args.epsilon)
                    .with_phi(phi)
                    .with_seed(args.seed)
                    .run(&space)?;
                baseline_simulated += rerun.stats.simulated_time();
                writeln!(
                    out,
                    "{coreset_cell} | eim rerun radius {:.6}, simulated {}",
                    rerun.solution.radius,
                    format_ms(rerun.stats.simulated_time()),
                )?;
            } else {
                writeln!(out, "{coreset_cell}")?;
            }
        }
    }

    // ---- Summary: the build-once/solve-many amortisation.
    let cells = args.ks.len() * args.phis.len();
    let sweep_total = build_simulated + solve_simulated;
    writeln!(
        out,
        "sweep-via-coreset: build {} + {} solves {} = simulated {} for {cells} cells",
        format_ms(build_simulated),
        per_k.len(),
        format_ms(solve_simulated),
        format_ms(sweep_total),
    )?;
    if args.baseline {
        let speedup = baseline_simulated.as_secs_f64() / sweep_total.as_secs_f64().max(1e-9);
        writeln!(
            out,
            "per-cell EIM reruns: simulated {} for {cells} cells -> sweep speedup {speedup:.2}x",
            format_ms(baseline_simulated),
        )?;
    }
    writeln!(
        out,
        "round accounting ({} rounds total, executor {executor}):",
        stats.num_rounds()
    )?;
    for round in stats.rounds() {
        writeln!(
            out,
            "  round {}: {} ({} machines, {} items, simulated {}, wall {})",
            round.round + 1,
            round.label,
            round.machines_used,
            round.items_in,
            format_ms(round.simulated_time),
            format_ms(round.wall_time),
        )?;
    }
    report_fault_log(&stats, out)?;
    Ok(())
}

fn ingest<W: Write>(args: &IngestArgs, out: &mut W) -> Result<(), CommandError> {
    let kernel = apply_kernel(args.kernel)?;
    writeln!(out, "kernel backend: {kernel}")?;
    let assign_arm = apply_assign(args.assign)?;
    writeln!(out, "assignment arm: {assign_arm}")?;
    let executor = apply_executor(args.executor, args.threads)?;
    writeln!(out, "cluster executor: {executor}")?;
    match args.precision {
        Precision::F64 => ingest_at::<f64, W>(args, executor, kernel, assign_arm, out)?,
        Precision::F32 => ingest_at::<f32, W>(args, executor, kernel, assign_arm, out)?,
    }
    report_assign_scans(out)
}

/// The fault-arm label stamped into the ingest report cell: the twin and
/// the killed-then-resumed run must produce the *same* label (kill flags
/// are deliberately excluded), so their reports diff cell-for-cell.
fn ingest_fault_label(faults: &FaultArgs) -> String {
    let mut label = match (&faults.plan_file, faults.fault_seed) {
        (Some(_), _) => "fault-plan".to_string(),
        (None, Some(seed)) => format!("fault-seed-{seed}"),
        (None, None) => "fault-free".to_string(),
    };
    if let Some(attempts) = faults.max_attempts {
        label.push_str(&format!("+attempts-{attempts}"));
    }
    if faults.degrade {
        label.push_str("+degrade");
    }
    label
}

fn ingest_at<S: Scalar, W: Write>(
    args: &IngestArgs,
    executor: Executor,
    kernel: KernelBackend,
    assign_arm: AssignChoice,
    out: &mut W,
) -> Result<(), CommandError> {
    let faults = build_fault_config(&args.faults)?;
    let config = IngestConfig {
        stream: StreamConfig {
            spec: args.spec.clone(),
            seed: args.seed,
            batches: args.batches,
        },
        t: args.coreset_size,
        budget: args.budget,
        machines: args.machines,
        faults,
        executor,
        solve_k: args.k,
        kill: args.kill,
    };
    let ingestor: Ingestor<Euclidean, S> = Ingestor::new(config, Path::new(&args.checkpoint))?;
    writeln!(
        out,
        "ingest {} as {} batches, seed {}, {} storage, checkpoint {}",
        args.spec.describe(),
        args.batches,
        args.seed,
        S::NAME,
        args.checkpoint,
    )?;
    let cell: SnapshotCell<Euclidean, S> = SnapshotCell::new();
    let outcome = match ingestor.run_with_cell(Some(&cell)) {
        Ok(outcome) => outcome,
        Err(IngestError::Killed { batch, stage }) => {
            // The injected crash is an *expected* outcome of a kill-point
            // run, not a failure: report it and exit cleanly so CI can
            // script kill-then-resume without parsing exit codes.
            writeln!(out, "INGEST KILLED at batch {batch} ({})", stage.name())?;
            writeln!(
                out,
                "restart with the same flags (minus --kill-after-batch) to resume from {}",
                args.checkpoint,
            )?;
            return Ok(());
        }
        Err(e) => return Err(e.into()),
    };

    match outcome.resumed_from {
        Some(done) => writeln!(
            out,
            "resumed from checkpoint: {done} of {} batches already folded, {} folded now",
            args.batches, outcome.batches_folded,
        )?,
        None => writeln!(
            out,
            "folded {} batches from scratch",
            outcome.batches_folded
        )?,
    }
    let coreset = &outcome.coreset;
    writeln!(
        out,
        "accumulated coreset: {} representatives covering {} points ({:.1}% coverage), construction radius {:.6}",
        coreset.len(),
        coreset.total_weight(),
        coreset.coverage_fraction() * 100.0,
        coreset.construction_radius(),
    )?;
    writeln!(
        out,
        "cumulative accounting: {} MapReduce rounds, re-ingested {} points from {} dropped shards",
        outcome.meta.rounds, outcome.meta.reingested_points, outcome.meta.reingested_shards,
    )?;

    // Final solution + full-stream certification for the report columns.
    let k = args.k.min(coreset.len());
    let solution = coreset.solve(k, SequentialSolver::Gonzalez, FirstCenter::default())?;
    let full = ingestor.stream().full_space();
    let certified = solution.certify(&full);
    writeln!(
        out,
        "certified covering radius {certified:.6} (coreset {:.6}, bound {:.6})",
        solution.coreset_radius, solution.radius_bound,
    )?;
    writeln!(out, "centers (source ids): {:?}", solution.centers)?;

    let snapshot = cell.load();
    writeln!(
        out,
        "published snapshot v{} ({} centers, digest {:016x})",
        snapshot.version(),
        snapshot.k(),
        snapshot.digest(),
    )?;
    for query in &args.queries {
        match snapshot.query(query) {
            Some(ans) => writeln!(
                out,
                "query {query:?} -> center {} (index {}) at distance {:.6}, bound {:.6}, snapshot v{}",
                ans.center, ans.index, ans.distance, ans.radius_bound, ans.version,
            )?,
            None => writeln!(
                out,
                "query {query:?} -> no answer (snapshot is empty or the dimension differs)",
            )?,
        }
    }

    if let Some(path) = &args.report {
        // A single-cell scenario report: the deterministic columns (radius,
        // centers, digest, rounds, coverage) are gated exactly by
        // `report_diff`; the timing columns are measurements and stay
        // ungated unless a tolerance is requested.  The cell id excludes
        // the kill flags so a killed-then-resumed run diffs cleanly
        // against its uninterrupted twin.
        let id = format!(
            "ingest-{}-n{}-b{}-t{}-g{}-m{}-{}-{}",
            args.spec.family().to_ascii_lowercase().replace(' ', "-"),
            args.spec.n(),
            args.batches,
            args.coreset_size,
            args.budget,
            args.machines,
            S::NAME,
            ingest_fault_label(&args.faults),
        );
        let report = ScenarioReport {
            scenario: "ingest".to_string(),
            seed: args.seed,
            k: args.k,
            cells: vec![CellResult {
                id,
                dataset: args.spec.describe(),
                n: args.spec.n(),
                solver: "ingest-gonzalez".to_string(),
                precision: S::NAME.to_string(),
                kernel: kernel.to_string(),
                assign: assign_arm.to_string(),
                executor: executor.to_string(),
                distance: "euclidean".to_string(),
                z: 0,
                fault: ingest_fault_label(&args.faults),
                radius: certified,
                kept_radius: certified,
                centers: solution.centers.len(),
                coverage: coreset.coverage_fraction(),
                rounds: outcome.meta.rounds as usize,
                simulated_ns: outcome.meta.simulated_ns,
                wall_ns: 0,
                digest: center_digest(&solution.centers),
            }],
        };
        std::fs::write(path, report.to_json())?;
        writeln!(out, "wrote ingest report to {path}")?;
    }
    Ok(())
}

fn info<W: Write>(args: &InfoArgs, out: &mut W) -> Result<(), CommandError> {
    let space = load_space::<f64>(&args.input, args.skip_columns)?;
    writeln!(out, "file: {}", args.input)?;
    writeln!(out, "points: {}", space.len())?;
    writeln!(out, "dimension: {}", space.dim().unwrap_or(0))?;
    if let Some(bbox) = BoundingBox::par_of_flat(space.flat()) {
        writeln!(out, "bounding box diagonal: {:.6}", bbox.diagonal())?;
        writeln!(out, "bounding box min: {:?}", bbox.min())?;
        writeln!(out, "bounding box max: {:?}", bbox.max())?;
    }
    // Cheap diameter estimate: two passes of the farthest-point heuristic.
    // Both ranges are non-empty under the len >= 2 guard; the `if let`
    // keeps a future refactor from turning that into a panic.
    if space.len() >= 2 {
        if let Some(far1) =
            (1..space.len()).max_by(|&a, &b| space.distance(0, a).total_cmp(&space.distance(0, b)))
        {
            if let Some(far2) = (0..space.len())
                .max_by(|&a, &b| space.distance(far1, a).total_cmp(&space.distance(far1, b)))
            {
                writeln!(
                    out,
                    "diameter estimate (double sweep): {:.6}",
                    space.distance(far1, far2)
                )?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::parse;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    fn run_cli(cmdline: &str) -> Result<String, CommandError> {
        let cli = parse(&argv(cmdline)).expect("command line should parse");
        let mut out = Vec::new();
        run(&cli, &mut out)?;
        Ok(String::from_utf8(out).unwrap())
    }

    fn temp_path(name: &str) -> String {
        let dir = std::env::temp_dir().join("kcenter-cli-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    /// Serialises tests that are sensitive to the process-global kernel
    /// dispatch table: `apply_kernel` installs a backend on every
    /// solve/sweep, so a test that pins non-default backends must not
    /// interleave with one comparing radii across runs.
    fn kernel_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
        match LOCK.get_or_init(|| std::sync::Mutex::new(())).lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    #[test]
    fn help_prints_usage() {
        let out = run_cli("help").unwrap();
        assert!(out.contains("kcenter"));
        assert!(out.contains("solve"));
    }

    #[test]
    fn generate_then_info_then_solve_round_trip() {
        let csv = temp_path("gau.csv");
        let out = run_cli(&format!(
            "generate gau --n 800 --k-prime 4 --seed 2 --out {csv}"
        ))
        .unwrap();
        assert!(out.contains("800 points"));

        let info = run_cli(&format!("info --input {csv}")).unwrap();
        assert!(info.contains("points: 800"));
        assert!(info.contains("dimension: 3"));
        assert!(info.contains("diameter estimate"));

        let solved = run_cli(&format!("solve gon --input {csv} --k 4")).unwrap();
        assert!(solved.contains("covering radius"));
        assert!(solved.contains("GON"));
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn solve_mrg_reports_rounds_and_writes_assignment() {
        let csv = temp_path("unif.csv");
        let assignment = temp_path("assignment.csv");
        run_cli(&format!("generate unif --n 600 --seed 1 --out {csv}")).unwrap();
        let out = run_cli(&format!(
            "solve mrg --input {csv} --k 5 --machines 6 --assign-out {assignment}"
        ))
        .unwrap();
        assert!(out.contains("MRG on 6 machines"));
        assert!(out.contains("MapReduce rounds"));
        assert!(out.contains("wrote assignment of 600 points"));
        let written = std::fs::read_to_string(&assignment).unwrap();
        assert!(written.starts_with("point,center_index,center_point_id"));
        assert_eq!(written.lines().count(), 601);
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&assignment).ok();
    }

    #[test]
    fn solve_with_outliers_reports_the_kept_radius_and_dropped_ids() {
        let csv = temp_path("planted.csv");
        run_cli(&format!(
            "generate gau+out --n 600 --k-prime 4 --outliers 12 --seed 9 --out {csv}"
        ))
        .unwrap();
        let out = run_cli(&format!("solve gon --input {csv} --k 4 --outliers 12")).unwrap();
        assert!(out.contains("with-outliers objective (z = 12)"));
        assert!(out.contains("kept radius"));
        assert!(out.contains("over 588 points"));
        assert!(out.contains("dropped point ids (farthest first):"));
        // The plain certified radius is still reported alongside.
        assert!(out.contains("covering radius (solution value):"));
        // z = 0 stays silent: no outlier lines without the flag.
        let plain = run_cli(&format!("solve gon --input {csv} --k 4")).unwrap();
        assert!(!plain.contains("with-outliers"));
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn generate_writes_the_adversarial_families() {
        for fam in ["exp", "dup", "gau-hd"] {
            let csv = temp_path(&format!("{fam}.csv"));
            let out = run_cli(&format!("generate {fam} --n 150 --seed 4 --out {csv}")).unwrap();
            assert!(out.contains("150 points"), "{fam}: {out}");
            let info = run_cli(&format!("info --input {csv}")).unwrap();
            assert!(info.contains("points: 150"), "{fam}: {info}");
            std::fs::remove_file(&csv).ok();
        }
    }

    #[test]
    fn solve_eim_and_hs_work_on_small_files() {
        let csv = temp_path("poker.csv");
        run_cli(&format!("generate poker --n 300 --seed 3 --out {csv}")).unwrap();
        let eim = run_cli(&format!(
            "solve eim --input {csv} --k 3 --machines 4 --phi 4 --seed 7"
        ))
        .unwrap();
        assert!(eim.contains("EIM (phi = 4"));
        let hs = run_cli(&format!("solve hs --input {csv} --k 3")).unwrap();
        assert!(hs.contains("Hochbaum-Shmoys"));
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn solve_reports_the_kernel_backend_and_names_unavailable_ones() {
        let _guard = kernel_lock();
        let csv = temp_path("kernel.csv");
        run_cli(&format!("generate unif --n 200 --seed 5 --out {csv}")).unwrap();
        // Pinning the scalar backend always works and is reported.
        let out = run_cli(&format!("solve gon --input {csv} --k 3 --kernel scalar")).unwrap();
        assert!(out.contains("kernel backend: scalar"));
        // The portable backend compiles everywhere.
        let out = run_cli(&format!("solve gon --input {csv} --k 3 --kernel portable")).unwrap();
        assert!(out.contains("kernel backend: portable"));
        // `auto` resolves to whatever this build supports.
        let out = run_cli(&format!("solve gon --input {csv} --k 3 --kernel auto")).unwrap();
        assert!(out.contains("kernel backend: "));
        // Requesting avx2 in a build/machine without it is the named error,
        // not a panic deep inside a scan.
        let avx2 = run_cli(&format!("solve gon --input {csv} --k 3 --kernel avx2"));
        if kcenter_metric::KernelBackend::Avx2.is_available() {
            assert!(avx2.unwrap().contains("kernel backend: avx2"));
        } else {
            let err = avx2.unwrap_err();
            assert!(matches!(
                err,
                CommandError::Algorithm(KCenterError::InvalidParameter { name: "kernel", .. })
            ));
            assert!(err.to_string().contains("avx2"));
        }
        // Restore the default for the rest of the suite.
        simd::set_active(KernelChoice::Auto.resolve().unwrap()).unwrap();
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn solve_reports_the_assignment_arm_and_scan_accounting() {
        // `apply_assign` installs a process-global choice, like the kernel
        // dispatch table — serialise with the other dispatch-pinning tests.
        let _guard = kernel_lock();
        let csv = temp_path("assign-arm.csv");
        run_cli(&format!("generate unif --n 400 --seed 4 --out {csv}")).unwrap();
        // Pinned dense: everything runs on the dense arm.
        let out = run_cli(&format!("solve gon --input {csv} --k 4 --assign dense")).unwrap();
        assert!(out.contains("assignment arm: dense"));
        assert!(out.contains("assignment scans: 0 grid"));
        // Pinned grid: the arm is reported and the scan accounting line is
        // printed (exact counts are asserted in the core parity suite —
        // concurrent tests share the process-global counters, so only the
        // "no grid scans under a dense pin" direction is race-free here).
        let grid_out = run_cli(&format!("solve gon --input {csv} --k 4 --assign grid")).unwrap();
        assert!(grid_out.contains("assignment arm: grid"));
        assert!(grid_out.contains("assignment scans: "));
        let radius_of = |s: &str| {
            s.lines()
                .find(|l| l.starts_with("covering radius"))
                .unwrap()
                .to_owned()
        };
        assert_eq!(radius_of(&out), radius_of(&grid_out));
        // `auto` is the default and is reported as such.
        let out = run_cli(&format!("solve gon --input {csv} --k 4")).unwrap();
        assert!(out.contains("assignment arm: auto"));
        // Restore the default for the rest of the suite.
        grid::set_choice(AssignChoice::Auto);
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn solve_with_f32_precision_reports_storage_and_matches_f64_closely() {
        // Radius-comparing test: keep the kernel backend stable across the
        // two runs (see `kernel_lock`).
        let _guard = kernel_lock();
        let csv = temp_path("precision.csv");
        run_cli(&format!("generate unif --n 500 --seed 4 --out {csv}")).unwrap();
        let f64_out = run_cli(&format!("solve gon --input {csv} --k 4")).unwrap();
        let f32_out = run_cli(&format!("solve gon --input {csv} --k 4 --precision f32")).unwrap();
        assert!(f64_out.contains("(f64 storage)"));
        assert!(f32_out.contains("(f32 storage)"));
        let radius = |s: &str| -> f64 {
            s.lines()
                .find(|l| l.starts_with("covering radius"))
                .and_then(|l| l.rsplit(' ').next())
                .unwrap()
                .parse()
                .unwrap()
        };
        let (r64, r32) = (radius(&f64_out), radius(&f32_out));
        // Same geometry up to the one-time f32 input rounding.
        assert!(
            (r64 - r32).abs() <= 1e-3 * (1.0 + r64),
            "f32 radius {r32} strays from f64 radius {r64}"
        );
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn f32_precision_rejects_oversized_coordinates_with_a_named_error() {
        let csv = temp_path("huge.csv");
        std::fs::write(&csv, "1e19,0.0\n0.0,1.0\n").unwrap();
        // Fine at f64 …
        run_cli(&format!("solve gon --input {csv} --k 1")).unwrap();
        // … named error (no panic) at f32, where its square would overflow.
        let err = run_cli(&format!("solve gon --input {csv} --k 1 --precision f32")).unwrap_err();
        assert!(matches!(
            err,
            CommandError::Algorithm(KCenterError::InvalidParameter {
                name: "precision",
                ..
            })
        ));
        assert!(err.to_string().contains("f64"));
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn sweep_builds_one_coreset_and_reports_the_grid() {
        let out = run_cli(
            "sweep --family gau --n 3000 --k-prime 5 --ks 2,3,5 --phis 1,4,8 \
             --machines 6 --epsilon 0.13 --seed 2 --coreset-size 60",
        )
        .unwrap();
        // One build, visible in the accounting.
        assert!(out.contains("coreset built once: 3 MapReduce rounds"));
        assert!(out.contains("builder gonzalez, 60 representatives covering 3000 points"));
        // 3x3 = 9 grid cells, each with a certified radius and a baseline.
        assert_eq!(out.matches("certified radius").count(), 9);
        assert_eq!(out.matches("eim rerun radius").count(), 9);
        assert!(out.contains("sweep speedup"));
        // One solve round per k rides next to the three build rounds.
        assert_eq!(out.matches("sweep solve k=").count(), 3);
        assert_eq!(out.matches("coreset round").count(), 3);
    }

    #[test]
    fn sweep_supports_the_eim_builder_and_f32_without_baseline() {
        let out = run_cli(
            "sweep --family unif --n 3000 --ks 2,3 --phis 4,8 --builder eim \
             --machines 6 --epsilon 0.13 --seed 1 --precision f32 --baseline off",
        )
        .unwrap();
        assert!(out.contains("(f32 storage)"));
        assert!(out.contains("builder eim"));
        assert!(out.contains("covering 3000 points"));
        assert_eq!(out.matches("certified radius").count(), 4);
        assert!(!out.contains("eim rerun radius"));
        assert!(out.contains("sweep-via-coreset"));
    }

    #[test]
    fn sweep_with_k_beyond_the_instance_size_does_not_panic() {
        // The automatic coreset size must cap at n, not assert on clamp
        // bounds; with k >= n the solve returns every representative.
        let out =
            run_cli("sweep --family unif --n 50 --ks 60 --phis 8 --machines 4 --baseline off")
                .unwrap();
        assert!(out.contains("50 representatives covering 50 points"));
        assert!(out.contains("certified radius 0.000000"));
    }

    #[test]
    fn sweep_reads_csv_input_like_solve() {
        let csv = temp_path("sweep.csv");
        run_cli(&format!("generate unif --n 800 --seed 5 --out {csv}")).unwrap();
        let out = run_cli(&format!(
            "sweep --input {csv} --ks 2,4 --phis 8 --machines 4 --baseline off"
        ))
        .unwrap();
        assert!(out.contains("sweep over 800 points"));
        assert_eq!(out.matches("certified radius").count(), 2);
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn missing_input_file_is_a_csv_error() {
        let err = run_cli("solve gon --input /definitely/not/there.csv --k 2").unwrap_err();
        assert!(matches!(err, CommandError::Csv(_)));
        assert!(err.to_string().contains("CSV error"));
    }

    #[test]
    fn algorithm_errors_are_reported() {
        let csv = temp_path("tiny.csv");
        run_cli(&format!("generate unif --n 5 --seed 1 --out {csv}")).unwrap();
        // k = 0 is rejected by the algorithm layer.
        let err = run_cli(&format!("solve gon --input {csv} --k 0")).unwrap_err();
        assert!(matches!(err, CommandError::Algorithm(KCenterError::ZeroK)));
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn faulty_solve_reports_the_log_and_matches_the_fault_free_radius() {
        let _guard = kernel_lock();
        let csv = temp_path("faults.csv");
        run_cli(&format!(
            "generate gau --n 1200 --k-prime 4 --seed 6 --out {csv}"
        ))
        .unwrap();
        let clean = run_cli(&format!("solve mrg --input {csv} --k 4 --machines 8")).unwrap();
        let faulty = run_cli(&format!(
            "solve mrg --input {csv} --k 4 --machines 8 --fault-seed 1234 --max-attempts 64"
        ))
        .unwrap();
        // The fault log is printed next to the round accounting...
        assert!(faulty.contains("fault injection:"));
        assert!(faulty.contains("attempts"));
        // ...and the result is bit-identical to the fault-free run.
        let tail = |s: &str| -> String {
            s.lines()
                .filter(|l| l.starts_with("covering radius") || l.starts_with("centers"))
                .collect()
        };
        assert_eq!(tail(&clean), tail(&faulty));
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn threaded_executor_is_reported_and_matches_the_simulated_output() {
        let _guard = kernel_lock();
        let csv = temp_path("executor.csv");
        run_cli(&format!(
            "generate gau --n 1500 --k-prime 4 --seed 9 --out {csv}"
        ))
        .unwrap();
        let simulated = run_cli(&format!("solve mrg --input {csv} --k 4 --machines 8")).unwrap();
        assert!(simulated.contains("cluster executor: simulated"));
        let threaded = run_cli(&format!(
            "solve mrg --input {csv} --k 4 --machines 8 --executor threads --threads 2"
        ))
        .unwrap();
        assert!(threaded.contains("cluster executor: threads(x2)"));
        assert!(threaded.contains("wall time"));
        // Bit-identical results — only the timing columns may differ.
        let tail = |s: &str| -> String {
            s.lines()
                .filter(|l| l.starts_with("covering radius") || l.starts_with("centers"))
                .collect()
        };
        assert_eq!(tail(&simulated), tail(&threaded));

        // The sweep reports the executor in its round accounting too.
        let sweep_out = run_cli(
            "sweep --family unif --n 1000 --ks 2 --phis 8 --machines 4 --seed 1 \
             --coreset-size 30 --baseline off --executor threads --threads 2",
        )
        .unwrap();
        assert!(sweep_out.contains("cluster executor: threads(x2)"));
        assert!(sweep_out.contains("executor threads(x2)"));
        assert!(sweep_out.contains("wall"));
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn executor_flag_rejects_unknown_env_free_values() {
        let csv = temp_path("badexec.csv");
        run_cli(&format!("generate unif --n 50 --seed 2 --out {csv}")).unwrap();
        let err = parse(&argv(&format!(
            "solve gon --input {csv} --k 2 --executor quantum"
        )))
        .unwrap_err();
        assert!(err.to_string().contains("quantum"));
        std::fs::remove_file(&csv).ok();
    }

    #[test]
    fn fault_plan_files_load_and_degrade_discloses_partial_coverage() {
        let _guard = kernel_lock();
        let csv = temp_path("degrade.csv");
        let plan = temp_path("plan.txt");
        run_cli(&format!("generate unif --n 1000 --seed 7 --out {csv}")).unwrap();
        // Machine 2 of round 0 dies on both allowed attempts.
        std::fs::write(
            &plan,
            "# kcenter fault plan v1\n\
             fault round=0 machine=2 attempt=0 kind=crash\n\
             fault round=0 machine=2 attempt=1 kind=crash\n",
        )
        .unwrap();
        // Without degrade mode the run fails with shard provenance.
        let err = run_cli(&format!(
            "solve mrg --input {csv} --k 3 --machines 10 --fault-plan {plan} --max-attempts 2"
        ))
        .unwrap_err();
        assert!(err.to_string().contains("round 0"));
        assert!(err.to_string().contains("machine 2"));
        // With degrade mode the run succeeds and discloses partial coverage.
        let out = run_cli(&format!(
            "solve mrg --input {csv} --k 3 --machines 10 --fault-plan {plan} \
             --max-attempts 2 --degrade on"
        ))
        .unwrap();
        assert!(out.contains("DEGRADED RESULT: certificate covers 900 of 1000 points (90.0%)"));
        assert!(out.contains("covering radius over the surviving subset"));
        assert!(out.contains("dropped:"));
        assert!(!out.contains("covering radius (solution value)"));
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&plan).ok();
    }

    #[test]
    fn malformed_fault_plans_and_sequential_solvers_are_named_errors() {
        let csv = temp_path("badplan.csv");
        let plan = temp_path("badplan.txt");
        run_cli(&format!("generate unif --n 50 --seed 8 --out {csv}")).unwrap();
        std::fs::write(&plan, "fault round=0 machine=zero attempt=0 kind=crash\n").unwrap();
        let err = run_cli(&format!(
            "solve mrg --input {csv} --k 2 --fault-plan {plan}"
        ))
        .unwrap_err();
        assert!(matches!(
            err,
            CommandError::Algorithm(KCenterError::InvalidParameter {
                name: "fault-plan",
                ..
            })
        ));
        // A missing plan file is an I/O error, not a panic.
        let err = run_cli(&format!(
            "solve mrg --input {csv} --k 2 --fault-plan /not/there.txt"
        ))
        .unwrap_err();
        assert!(matches!(err, CommandError::Io(_)));
        // Sequential solvers reject fault injection by name.
        let err = run_cli(&format!("solve gon --input {csv} --k 2 --fault-seed 1")).unwrap_err();
        assert!(err.to_string().contains("mrg or eim"));
        std::fs::remove_file(&csv).ok();
        std::fs::remove_file(&plan).ok();
    }

    #[test]
    fn ingest_folds_a_stream_answers_queries_and_writes_a_report() {
        let _guard = kernel_lock();
        let ckpt = temp_path("ingest-basic.ckpt");
        let report = temp_path("ingest-basic.json");
        std::fs::remove_file(&ckpt).ok();
        let out = run_cli(&format!(
            "ingest --family gau --n 400 --k-prime 4 --seed 33 --batches 4 \
             --coreset-size 16 --budget 40 --machines 4 --k 4 --checkpoint {ckpt} \
             --query 0,0,0 --query 50,50,50 --report {report}"
        ))
        .unwrap();
        assert!(out.contains("ingest GAU"));
        assert!(out.contains("folded 4 batches from scratch"));
        assert!(out.contains("(100.0% coverage)"));
        assert!(out.contains("certified covering radius"));
        assert!(out.contains("published snapshot v4"));
        assert_eq!(out.matches("at distance").count(), 2);
        assert!(out.contains("snapshot v4"));
        // The report round-trips through the scenario-report parser and
        // carries the deterministic columns report_diff gates on.
        let parsed = ScenarioReport::from_json(&std::fs::read_to_string(&report).unwrap()).unwrap();
        assert_eq!(parsed.scenario, "ingest");
        assert_eq!(parsed.cells.len(), 1);
        let cell = &parsed.cells[0];
        assert_eq!(cell.id, "ingest-gau-n400-b4-t16-g40-m4-f64-fault-free");
        assert_eq!(cell.solver, "ingest-gonzalez");
        assert_eq!(cell.centers, 4);
        assert_eq!(cell.coverage, 1.0);
        assert!(cell.radius > 0.0);
        assert_eq!(cell.digest.len(), 16);
        // A second run resumes from the complete checkpoint: zero new
        // folds, but the same final state, snapshot, and report columns.
        let report2 = temp_path("ingest-basic2.json");
        let again = run_cli(&format!(
            "ingest --family gau --n 400 --k-prime 4 --seed 33 --batches 4 \
             --coreset-size 16 --budget 40 --machines 4 --k 4 --checkpoint {ckpt} \
             --report {report2}"
        ))
        .unwrap();
        assert!(again.contains("resumed from checkpoint: 4 of 4 batches already folded"));
        let parsed2 =
            ScenarioReport::from_json(&std::fs::read_to_string(&report2).unwrap()).unwrap();
        let strip_timing = |c: &CellResult| {
            let mut c = c.clone();
            c.simulated_ns = 0;
            c.wall_ns = 0;
            c
        };
        assert_eq!(strip_timing(cell), strip_timing(&parsed2.cells[0]));
        std::fs::remove_file(&ckpt).ok();
        std::fs::remove_file(&report).ok();
        std::fs::remove_file(&report2).ok();
    }

    #[test]
    fn killed_ingest_exits_cleanly_and_resumes_to_the_twin_report() {
        let _guard = kernel_lock();
        let twin_ckpt = temp_path("ingest-twin.ckpt");
        let twin_report = temp_path("ingest-twin.json");
        let ckpt = temp_path("ingest-killed.ckpt");
        let report = temp_path("ingest-killed.json");
        std::fs::remove_file(&twin_ckpt).ok();
        std::fs::remove_file(&ckpt).ok();
        let flags = "ingest --family gau --n 400 --k-prime 4 --seed 33 --batches 5 \
                     --coreset-size 16 --budget 40 --machines 4 --k 4";
        let twin = run_cli(&format!(
            "{flags} --checkpoint {twin_ckpt} --report {twin_report}"
        ))
        .unwrap();
        assert!(twin.contains("folded 5 batches from scratch"));
        // The kill is a clean, reported exit — not an error.
        let killed = run_cli(&format!(
            "{flags} --checkpoint {ckpt} --kill-after-batch 2 --kill-stage during-checkpoint"
        ))
        .unwrap();
        assert!(killed.contains("INGEST KILLED at batch 2 (during-checkpoint)"));
        assert!(killed.contains("restart with the same flags"));
        // Resume without the kill flags: same cell id, same deterministic
        // columns as the uninterrupted twin.
        let resumed = run_cli(&format!("{flags} --checkpoint {ckpt} --report {report}")).unwrap();
        assert!(resumed.contains("resumed from checkpoint: 2 of 5"));
        let twin_parsed =
            ScenarioReport::from_json(&std::fs::read_to_string(&twin_report).unwrap()).unwrap();
        let parsed = ScenarioReport::from_json(&std::fs::read_to_string(&report).unwrap()).unwrap();
        let strip_timing = |c: &CellResult| {
            let mut c = c.clone();
            c.simulated_ns = 0;
            c.wall_ns = 0;
            c
        };
        assert_eq!(
            strip_timing(&twin_parsed.cells[0]),
            strip_timing(&parsed.cells[0])
        );
        std::fs::remove_file(&twin_ckpt).ok();
        std::fs::remove_file(&twin_report).ok();
        std::fs::remove_file(&ckpt).ok();
        std::fs::remove_file(&report).ok();
    }

    #[test]
    fn ingest_refuses_a_checkpoint_from_another_configuration() {
        let ckpt = temp_path("ingest-mismatch.ckpt");
        std::fs::remove_file(&ckpt).ok();
        run_cli(&format!(
            "ingest --family gau --n 400 --k-prime 4 --seed 33 --batches 4 \
             --coreset-size 16 --k 4 --checkpoint {ckpt}"
        ))
        .unwrap();
        let err = run_cli(&format!(
            "ingest --family gau --n 400 --k-prime 4 --seed 34 --batches 4 \
             --coreset-size 16 --k 4 --checkpoint {ckpt}"
        ))
        .unwrap_err();
        assert!(matches!(
            err,
            CommandError::Ingest(IngestError::ConfigMismatch { .. })
        ));
        assert!(err.to_string().contains("different configuration"));
        // A corrupted checkpoint is a named format error, not a panic.
        let mut bytes = std::fs::read(&ckpt).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&ckpt, &bytes).unwrap();
        let err = run_cli(&format!(
            "ingest --family gau --n 400 --k-prime 4 --seed 33 --batches 4 \
             --coreset-size 16 --k 4 --checkpoint {ckpt}"
        ))
        .unwrap_err();
        assert!(matches!(
            err,
            CommandError::Ingest(IngestError::Checkpoint(_))
        ));
        assert!(err.to_string().contains("checksum"));
        std::fs::remove_file(&ckpt).ok();
    }

    #[test]
    fn faulty_sweep_logs_faults_and_partial_builds_mark_every_cell() {
        let _guard = kernel_lock();
        // Retried-to-success sweep: identical grid radii, visible fault log.
        let clean = run_cli(
            "sweep --family gau --n 2000 --k-prime 4 --ks 2,4 --phis 8 --machines 8 \
             --seed 3 --coreset-size 40 --baseline off",
        )
        .unwrap();
        let faulty = run_cli(
            "sweep --family gau --n 2000 --k-prime 4 --ks 2,4 --phis 8 --machines 8 \
             --seed 3 --coreset-size 40 --baseline off --fault-seed 99 --max-attempts 64",
        )
        .unwrap();
        assert!(faulty.contains("fault injection:"));
        let cells = |s: &str| -> Vec<String> {
            s.lines()
                .filter(|l| l.contains("certified radius"))
                .map(String::from)
                .collect()
        };
        assert_eq!(cells(&clean), cells(&faulty));

        // Degraded sweep: the build drops a shard and every cell is marked.
        let plan = temp_path("sweepplan.txt");
        std::fs::write(
            &plan,
            "fault round=0 machine=1 attempt=0 kind=crash\n\
             fault round=0 machine=1 attempt=1 kind=crash\n",
        )
        .unwrap();
        let out = run_cli(&format!(
            "sweep --family unif --n 1000 --ks 2 --phis 8 --machines 10 --seed 3 \
             --coreset-size 30 --baseline off --fault-plan {plan} --max-attempts 2 --degrade on"
        ))
        .unwrap();
        assert!(out.contains("PARTIAL CORESET: certificate covers 900 of 1000 source points"));
        assert!(out.contains("certified radius over survivors"));
        assert!(out.contains("dropped:"));
        std::fs::remove_file(&plan).ok();
    }
}
