//! Command-line argument parsing for the `kcenter` tool.
//!
//! Hand-rolled parsing keeps the dependency set to the workspace-approved
//! crates; the grammar is small enough that a parser combinator library
//! would be overkill.

use kcenter_data::DatasetSpec;
use kcenter_mapreduce::ExecutorChoice;
use kcenter_metric::{AssignChoice, KernelChoice, Precision};
use kcenter_serve::{KillPoint, KillStage};
use std::fmt;

/// The parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Cli {
    /// The subcommand to execute.
    pub command: Command,
}

/// The available subcommands.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Generate a synthetic workload and write it to CSV.
    Generate(GenerateArgs),
    /// Run a k-center algorithm on a CSV point file.
    Solve(SolveArgs),
    /// Build a weighted coreset once and evaluate a `(k, φ)` grid on it.
    Sweep(SweepArgs),
    /// Fold a batched stream into a checkpointed coreset service.
    Ingest(IngestArgs),
    /// Print statistics about a CSV point file.
    Info(InfoArgs),
    /// Print the usage text.
    Help,
}

/// Arguments of the `generate` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerateArgs {
    /// The workload to generate.
    pub spec: DatasetSpec,
    /// RNG seed.
    pub seed: u64,
    /// Output CSV path.
    pub output: String,
}

/// Which algorithm the `solve` subcommand runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverChoice {
    /// Sequential Gonzalez (2-approximation).
    Gon,
    /// MapReduce Gonzalez (typically two rounds, 4-approximation).
    Mrg,
    /// Iterative sampling (10-approximation w.h.p.).
    Eim,
    /// Hochbaum–Shmoys bottleneck search (2-approximation, quadratic).
    HochbaumShmoys,
}

impl SolverChoice {
    /// Parses an algorithm name as used on the command line.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "gon" | "gonzalez" => Some(SolverChoice::Gon),
            "mrg" => Some(SolverChoice::Mrg),
            "eim" => Some(SolverChoice::Eim),
            "hs" | "hochbaum-shmoys" => Some(SolverChoice::HochbaumShmoys),
            _ => None,
        }
    }
}

/// Fault-injection options shared by `solve` and `sweep`.
///
/// A run is fault-free unless `--fault-plan FILE` (an explicit schedule or
/// seeded plan in the [`kcenter_mapreduce::FaultPlan::parse_text`] format)
/// or `--fault-seed S` (a seeded plan at the default rates) is given; the
/// two are mutually exclusive.  `--max-attempts` and `--degrade` tune the
/// retry budget and graceful-degradation switch and require one of the
/// plan flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultArgs {
    /// Path of a `--fault-plan` file (`None` = no explicit plan).
    pub plan_file: Option<String>,
    /// Seed of a `--fault-seed` plan (`None` = no seeded plan).
    pub fault_seed: Option<u64>,
    /// `--max-attempts` override for the per-shard attempt budget.
    pub max_attempts: Option<usize>,
    /// Whether `--degrade on` opted into graceful degradation.
    pub degrade: bool,
}

impl FaultArgs {
    /// Whether any fault injection was requested.
    pub fn is_active(&self) -> bool {
        self.plan_file.is_some() || self.fault_seed.is_some()
    }

    /// Consumes one `--flag value` pair if it is a fault flag; returns
    /// whether the pair was consumed.
    fn consume(&mut self, flag: &str, value: &str) -> Result<bool, ParseError> {
        match flag {
            "--fault-plan" => self.plan_file = Some(value.to_string()),
            "--fault-seed" => self.fault_seed = Some(parse_number(flag, value)?),
            "--max-attempts" => {
                let attempts: usize = parse_number(flag, value)?;
                if attempts == 0 {
                    return Err(ParseError(
                        "--max-attempts needs at least one attempt".into(),
                    ));
                }
                self.max_attempts = Some(attempts);
            }
            "--degrade" => {
                self.degrade = match value.to_ascii_lowercase().as_str() {
                    "on" | "true" | "yes" => true,
                    "off" | "false" | "no" => false,
                    other => {
                        return Err(ParseError(format!(
                            "invalid value {other:?} for --degrade (expected on or off)"
                        )))
                    }
                }
            }
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Cross-flag validation after all pairs are consumed.
    fn validate(&self) -> Result<(), ParseError> {
        if self.plan_file.is_some() && self.fault_seed.is_some() {
            return Err(ParseError(
                "--fault-plan and --fault-seed are mutually exclusive".into(),
            ));
        }
        if !self.is_active() && (self.max_attempts.is_some() || self.degrade) {
            return Err(ParseError(
                "--max-attempts/--degrade need a fault source (--fault-plan or --fault-seed)"
                    .into(),
            ));
        }
        Ok(())
    }
}

/// Arguments of the `solve` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveArgs {
    /// The algorithm to run.
    pub algorithm: SolverChoice,
    /// Input CSV path.
    pub input: String,
    /// Number of centers.
    pub k: usize,
    /// Number of simulated machines (parallel algorithms only).
    pub machines: usize,
    /// EIM's φ parameter.
    pub phi: f64,
    /// EIM's ε parameter.
    pub epsilon: f64,
    /// Seed for algorithm-internal randomness.
    pub seed: u64,
    /// Number of trailing CSV columns to ignore (e.g. class labels).
    pub skip_columns: usize,
    /// Optional path to write the per-point assignment to
    /// (`--assign-out OUT.csv`).
    pub assignment_out: Option<String>,
    /// Storage precision for the coordinate store: `f32` halves the scan
    /// bandwidth (the covering radius is still certified in `f64`).
    pub precision: Precision,
    /// Kernel backend request (`--kernel auto|scalar|portable|avx2`);
    /// `None` defers to the `KCENTER_KERNEL` environment variable.
    pub kernel: Option<KernelChoice>,
    /// Assignment-arm request (`--assign auto|dense|grid`); `None` defers
    /// to the `KCENTER_ASSIGN` environment variable.
    pub assign: Option<AssignChoice>,
    /// Cluster-executor request (`--executor simulated|threads`); `None`
    /// defers to the `KCENTER_EXECUTOR` environment variable.
    pub executor: Option<ExecutorChoice>,
    /// Worker-thread budget (`--threads N`); `None` defers to the
    /// `KCENTER_THREADS` environment variable, then to the host's
    /// available parallelism.
    pub threads: Option<usize>,
    /// With-outliers objective: additionally certify the radius over the
    /// `n − z` kept points after dropping the `z` farthest (`--outliers Z`;
    /// 0 disables the extra report).
    pub outliers: usize,
    /// Fault-injection options (inactive by default).
    pub faults: FaultArgs,
}

/// Which builder the `sweep` subcommand uses for its one-off coreset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepBuilderChoice {
    /// Gonzalez-seeded: farthest-point traversal to `--coreset-size`
    /// representatives (MapReduce merge construction above one machine).
    Gonzalez,
    /// EIM-sampled: one run of the iterative-sampling loop at the largest
    /// requested `k`, keeping `C = S ∪ R` as the coreset.
    Eim,
}

impl SweepBuilderChoice {
    /// Parses a builder name as used on the command line.
    pub fn parse(name: &str) -> Option<Self> {
        match name.to_ascii_lowercase().as_str() {
            "gon" | "gonzalez" => Some(SweepBuilderChoice::Gonzalez),
            "eim" => Some(SweepBuilderChoice::Eim),
            _ => None,
        }
    }
}

/// Where the `sweep` subcommand gets its points from.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepSource {
    /// Load a CSV point file (like `solve --input`).
    Csv {
        /// Input CSV path.
        path: String,
        /// Number of trailing CSV columns to ignore.
        skip_columns: usize,
    },
    /// Generate one of the paper's synthetic workloads in memory.
    Generated(DatasetSpec),
}

/// Arguments of the `sweep` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    /// Input points: a CSV file or a generated workload.
    pub source: SweepSource,
    /// The `k` values of the grid.
    pub ks: Vec<usize>,
    /// The `φ` values of the grid (used by the per-cell EIM baseline and,
    /// for the EIM builder, the build runs at the largest of them).
    pub phis: Vec<f64>,
    /// Which coreset builder to use.
    pub builder: SweepBuilderChoice,
    /// Gonzalez builder: number of representatives (0 = automatic,
    /// `20 · max(k)` clamped to the instance size).
    pub coreset_size: usize,
    /// Number of simulated machines for build, solves and baselines.
    pub machines: usize,
    /// EIM's ε parameter (builder and baseline).
    pub epsilon: f64,
    /// Seed for all sampling randomness.
    pub seed: u64,
    /// Storage precision of the coordinate store.
    pub precision: Precision,
    /// Kernel backend request (`--kernel auto|scalar|portable|avx2`);
    /// `None` defers to the `KCENTER_KERNEL` environment variable.
    pub kernel: Option<KernelChoice>,
    /// Assignment-arm request (`--assign auto|dense|grid`); `None` defers
    /// to the `KCENTER_ASSIGN` environment variable.
    pub assign: Option<AssignChoice>,
    /// Cluster-executor request (`--executor simulated|threads`); `None`
    /// defers to the `KCENTER_EXECUTOR` environment variable.
    pub executor: Option<ExecutorChoice>,
    /// Worker-thread budget (`--threads N`); `None` defers to the
    /// `KCENTER_THREADS` environment variable, then to the host's
    /// available parallelism.
    pub threads: Option<usize>,
    /// Whether to run the per-cell EIM reruns the sweep amortises away
    /// (disable to time the coreset path alone).
    pub baseline: bool,
    /// Fault-injection options (inactive by default; applied to the
    /// coreset build rounds).
    pub faults: FaultArgs,
}

/// Arguments of the `ingest` subcommand: the durable streaming coreset
/// service.  A generated workload is replayed as `--batches` contiguous
/// batches; each batch is summarised (optionally under fault injection),
/// merged into the accumulated coreset (re-compressed to `--budget`), and
/// the state is atomically checkpointed to `--checkpoint` after every
/// fold.  Re-running the same command resumes from the last durable
/// checkpoint and produces bit-identical deterministic results.
#[derive(Debug, Clone, PartialEq)]
pub struct IngestArgs {
    /// The workload replayed as a stream.
    pub spec: DatasetSpec,
    /// Generator seed.
    pub seed: u64,
    /// Number of contiguous batches.
    pub batches: usize,
    /// Representatives per batch summary (`--coreset-size`).
    pub coreset_size: usize,
    /// Budget of the accumulated coreset (re-compression threshold).
    pub budget: usize,
    /// Simulated machines per batch build.
    pub machines: usize,
    /// Centers for the published query snapshot (`--k`).
    pub k: usize,
    /// Checkpoint file path.
    pub checkpoint: String,
    /// Storage precision of the coordinate store.
    pub precision: Precision,
    /// Kernel backend request; `None` defers to `KCENTER_KERNEL`.
    pub kernel: Option<KernelChoice>,
    /// Assignment-arm request; `None` defers to `KCENTER_ASSIGN`.
    pub assign: Option<AssignChoice>,
    /// Cluster-executor request; `None` defers to `KCENTER_EXECUTOR`.
    pub executor: Option<ExecutorChoice>,
    /// Worker-thread budget; `None` defers to `KCENTER_THREADS`.
    pub threads: Option<usize>,
    /// Fault-injection options for the batch builds (dropped shards are
    /// healed by re-ingestion from the stream, not disclosed as lost).
    pub faults: FaultArgs,
    /// Deterministic crash injection: die at `--kill-stage` of batch
    /// `--kill-after-batch` (composes with `--fault-seed`).
    pub kill: Option<KillPoint>,
    /// Points to answer from the final published snapshot (`--query
    /// X,Y,...`, repeatable).
    pub queries: Vec<Vec<f64>>,
    /// Optional path for a single-cell scenario-report JSON
    /// (`report_diff`-comparable) of the final state.
    pub report: Option<String>,
}

/// Arguments of the `info` subcommand.
#[derive(Debug, Clone, PartialEq)]
pub struct InfoArgs {
    /// Input CSV path.
    pub input: String,
    /// Number of trailing CSV columns to ignore.
    pub skip_columns: usize,
}

/// A command-line parsing error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// The usage text printed by `kcenter help`.
pub const USAGE: &str = "\
kcenter — parallel k-center clustering (McClintock & Wirth, ICPP 2016)

USAGE:
  kcenter generate <unif|gau|unb|poker|kdd|exp|dup|gau-hd|gau+out> --n N
                [--k-prime K'] [--distinct D] [--dim DIM] [--outliers Z]
                [--seed S] --out FILE.csv
  kcenter solve <gon|mrg|eim|hs> --input FILE.csv --k K [--machines M] [--phi P]
                [--epsilon E] [--seed S] [--skip-columns C] [--assign-out OUT.csv]
                [--precision f32|f64] [--kernel auto|scalar|portable|avx2]
                [--assign auto|dense|grid]
                [--executor simulated|threads] [--threads N] [--outliers Z]
                [--fault-plan FILE | --fault-seed S] [--max-attempts N]
                [--degrade on|off]
  kcenter sweep (--input FILE.csv | --family <unif|gau|unb|poker|kdd> --n N [--k-prime K'])
                --ks K1,K2,... [--phis P1,P2,...] [--builder gonzalez|eim]
                [--coreset-size T] [--machines M] [--epsilon E] [--seed S]
                [--skip-columns C] [--precision f32|f64]
                [--kernel auto|scalar|portable|avx2] [--assign auto|dense|grid]
                [--executor simulated|threads] [--threads N]
                [--baseline on|off]
                [--fault-plan FILE | --fault-seed S] [--max-attempts N]
                [--degrade on|off]
  kcenter ingest --family <unif|gau|unb|poker|kdd> --n N [--k-prime K']
                --batches B --k K --checkpoint FILE.ckpt [--seed S]
                [--coreset-size T] [--budget C] [--machines M]
                [--precision f32|f64] [--kernel auto|scalar|portable|avx2]
                [--assign auto|dense|grid]
                [--executor simulated|threads] [--threads N]
                [--fault-plan FILE | --fault-seed S] [--max-attempts N]
                [--degrade on|off]
                [--kill-after-batch B
                 [--kill-stage before-checkpoint|during-checkpoint|after-checkpoint]]
                [--query X,Y,...] [--report OUT.json]
  kcenter info --input FILE.csv [--skip-columns C]
  kcenter help

The sweep builds one weighted coreset, solves every (k, phi) grid cell on
it, certifies each cell's full-data radius, and (unless --baseline off)
compares against per-cell EIM reruns to report the build-once/solve-many
amortisation.

generate's adversarial families: `exp` places K' clusters at
exponentially growing magnitudes (spread ratio 2), `dup` draws every
point from only --distinct D lattice locations (duplicate-heavy,
tie-dense), `gau-hd` is the Gaussian family in --dim DIM dimensions
(64/128 stress the grid-index crossover), and `gau+out` (alias
`planted`) is Gaussian data with --outliers Z planted far points
(default 1% of n).

solve --outliers Z additionally certifies the k-center-with-outliers
objective: the radius over the n - z kept points after dropping the z
farthest from the chosen centers (ties drop the lowest point id).  With
Z = 0 the kept radius is bit-identical to the plain certified radius.

--kernel pins the distance-kernel backend for the comparison-space scans
(certified radii are always computed with the fixed scalar f64 kernels);
it overrides the KCENTER_KERNEL environment variable, and `auto` picks
AVX2+FMA when the binary was built with the `simd` feature on a supporting
CPU.

--assign pins the assignment-scan arm: `dense` always runs the flat SIMD
scans, `grid` routes relax/nearest scans through the spatial-grid index
(falling back to dense where the grid cannot index the space), and `auto`
(the default) applies a bench-measured crossover.  It overrides the
KCENTER_ASSIGN environment variable; both arms select bit-identical
centers, so results are bit-deterministic per (seed, precision, kernel,
assign).

--executor selects how the MapReduce rounds run the simulated machines:
`simulated` (the default) executes them sequentially with the paper's
max-per-machine cost accounting, `threads` fans each round out over real
std::thread::scope workers.  Results are bit-identical either way — only
the wall-clock column changes.  --threads N pins the worker budget
(default: the host's available parallelism) and also caps the chunked
par_* distance kernels.  Both flags override the KCENTER_EXECUTOR /
KCENTER_THREADS environment variables.

ingest replays the workload as --batches contiguous batches and folds
them into one durable coreset service: each batch is summarised with
--coreset-size representatives (under fault injection if requested —
dropped shards are healed by re-ingesting their rows from the stream,
never disclosed as lost), merged into the accumulated summary
(re-compressed once it exceeds --budget), and atomically checkpointed to
--checkpoint after every fold (write-temp + fsync + rename).  Re-running
the identical command resumes from the last durable checkpoint; all
deterministic outputs are bit-identical to an uninterrupted run.
--kill-after-batch B [--kill-stage ...] injects a deterministic crash for
testing that contract (during-checkpoint dies mid-write and must leave
the previous checkpoint intact).  --query X,Y,... answers nearest-center
queries from the final published snapshot; --report OUT.json writes a
single-cell scenario report comparable with report_diff.

--fault-seed S (or --fault-plan FILE for an explicit schedule) injects
deterministic reducer faults into the MapReduce rounds: crashes,
stragglers and corrupt outputs, retried up to --max-attempts times with
charged backoff and straggler speculation.  When every shard eventually
succeeds, results stay bit-identical to the fault-free run.  --degrade on
drops shards that exhaust their attempts and reports an explicitly
partial result (surviving coverage fraction and dropped-shard
provenance) instead of failing.
";

/// Parses the full argument vector (excluding the program name).
pub fn parse(args: &[String]) -> Result<Cli, ParseError> {
    let mut it = args.iter();
    let command = match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => {
            return Ok(Cli {
                command: Command::Help,
            })
        }
        Some("generate") => Command::Generate(parse_generate(&args[1..])?),
        Some("solve") => Command::Solve(parse_solve(&args[1..])?),
        Some("sweep") => Command::Sweep(parse_sweep(&args[1..])?),
        Some("ingest") => Command::Ingest(parse_ingest(&args[1..])?),
        Some("info") => Command::Info(parse_info(&args[1..])?),
        Some(other) => return Err(ParseError(format!("unknown subcommand {other:?}"))),
    };
    Ok(Cli { command })
}

/// Collects `--flag value` pairs after the positional arguments.
fn collect_flags(args: &[String]) -> Result<Vec<(String, String)>, ParseError> {
    let mut flags = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let flag = &args[i];
        if !flag.starts_with("--") {
            return Err(ParseError(format!("expected a --flag, found {flag:?}")));
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| ParseError(format!("{flag} requires a value")))?;
        flags.push((flag.clone(), value.clone()));
        i += 2;
    }
    Ok(flags)
}

fn parse_number<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, ParseError> {
    value
        .parse()
        .map_err(|_| ParseError(format!("invalid value {value:?} for {flag}")))
}

fn parse_generate(args: &[String]) -> Result<GenerateArgs, ParseError> {
    let family = args
        .first()
        .ok_or_else(|| ParseError("generate needs a workload family".into()))?;
    let flags = collect_flags(&args[1..])?;
    let mut n: Option<usize> = None;
    let mut k_prime: usize = 25;
    let mut seed: u64 = 1;
    let mut output: Option<String> = None;
    let mut distinct: usize = 16;
    let mut dim: usize = 64;
    let mut outliers: Option<usize> = None;
    for (flag, value) in &flags {
        match flag.as_str() {
            "--n" => n = Some(parse_number(flag, value)?),
            "--k-prime" => k_prime = parse_number(flag, value)?,
            "--seed" => seed = parse_number(flag, value)?,
            "--out" => output = Some(value.clone()),
            "--distinct" => distinct = parse_number(flag, value)?,
            "--dim" => dim = parse_number(flag, value)?,
            "--outliers" => outliers = Some(parse_number(flag, value)?),
            other => return Err(ParseError(format!("unknown flag {other:?} for generate"))),
        }
    }
    let n = n.ok_or_else(|| ParseError("generate requires --n".into()))?;
    let output = output.ok_or_else(|| ParseError("generate requires --out".into()))?;
    let spec = match family.to_ascii_lowercase().as_str() {
        "unif" => DatasetSpec::Unif { n },
        "gau" => DatasetSpec::Gau { n, k_prime },
        "unb" => DatasetSpec::Unb { n, k_prime },
        "poker" => DatasetSpec::PokerHand { n },
        "kdd" => DatasetSpec::KddCup { n },
        "exp" => DatasetSpec::Exp { n, k_prime },
        "dup" => DatasetSpec::Dup { n, distinct },
        "gau-hd" => DatasetSpec::HighDim { n, k_prime, dim },
        "gau+out" | "planted" => DatasetSpec::PlantedOutliers {
            n,
            k_prime,
            // Default: 1% planted outliers, at least one.
            outliers: outliers.unwrap_or_else(|| (n / 100).max(1)),
        },
        other => return Err(ParseError(format!("unknown workload family {other:?}"))),
    };
    if outliers.is_some() && !matches!(spec, DatasetSpec::PlantedOutliers { .. }) {
        return Err(ParseError(
            "--outliers only applies to the gau+out (planted) family".into(),
        ));
    }
    Ok(GenerateArgs { spec, seed, output })
}

fn parse_solve(args: &[String]) -> Result<SolveArgs, ParseError> {
    let algo_name = args
        .first()
        .ok_or_else(|| ParseError("solve needs an algorithm (gon|mrg|eim|hs)".into()))?;
    let algorithm = SolverChoice::parse(algo_name)
        .ok_or_else(|| ParseError(format!("unknown algorithm {algo_name:?}")))?;
    let flags = collect_flags(&args[1..])?;
    let mut input: Option<String> = None;
    let mut k: Option<usize> = None;
    let mut machines: usize = 50;
    let mut phi: f64 = 8.0;
    let mut epsilon: f64 = 0.1;
    let mut seed: u64 = 0;
    let mut skip_columns: usize = 0;
    let mut assignment_out: Option<String> = None;
    let mut precision = Precision::default();
    let mut kernel: Option<KernelChoice> = None;
    let mut assign: Option<AssignChoice> = None;
    let mut executor: Option<ExecutorChoice> = None;
    let mut threads: Option<usize> = None;
    let mut outliers: usize = 0;
    let mut faults = FaultArgs::default();
    for (flag, value) in &flags {
        if faults.consume(flag, value)? {
            continue;
        }
        match flag.as_str() {
            "--input" => input = Some(value.clone()),
            "--k" => k = Some(parse_number(flag, value)?),
            "--machines" => machines = parse_number(flag, value)?,
            "--phi" => phi = parse_number(flag, value)?,
            "--epsilon" => epsilon = parse_number(flag, value)?,
            "--seed" => seed = parse_number(flag, value)?,
            "--skip-columns" => skip_columns = parse_number(flag, value)?,
            "--assign-out" => assignment_out = Some(value.clone()),
            "--precision" => {
                precision = Precision::parse(value).ok_or_else(|| {
                    ParseError(format!(
                        "invalid value {value:?} for --precision (expected f32 or f64)"
                    ))
                })?
            }
            "--kernel" => kernel = Some(parse_kernel(value)?),
            "--assign" => assign = Some(parse_assign(value)?),
            "--executor" => executor = Some(parse_executor(value)?),
            "--threads" => threads = Some(parse_threads(value)?),
            "--outliers" => outliers = parse_number(flag, value)?,
            other => return Err(ParseError(format!("unknown flag {other:?} for solve"))),
        }
    }
    faults.validate()?;
    Ok(SolveArgs {
        algorithm,
        input: input.ok_or_else(|| ParseError("solve requires --input".into()))?,
        k: k.ok_or_else(|| ParseError("solve requires --k".into()))?,
        machines,
        phi,
        epsilon,
        seed,
        skip_columns,
        assignment_out,
        precision,
        kernel,
        assign,
        executor,
        threads,
        outliers,
        faults,
    })
}

/// Parses a `--kernel` value; unknown names surface the named
/// [`kcenter_metric::KernelSelectError`] message.
fn parse_kernel(value: &str) -> Result<KernelChoice, ParseError> {
    KernelChoice::parse(value).map_err(|e| ParseError(format!("invalid value for --kernel: {e}")))
}

/// Parses an `--assign` value; unknown names surface the named
/// [`kcenter_metric::AssignSelectError`] message.
fn parse_assign(value: &str) -> Result<AssignChoice, ParseError> {
    AssignChoice::parse(value).map_err(|e| ParseError(format!("invalid value for --assign: {e}")))
}

/// Parses an `--executor` value; unknown names surface the named
/// [`kcenter_mapreduce::ExecutorSelectError`] message.
fn parse_executor(value: &str) -> Result<ExecutorChoice, ParseError> {
    ExecutorChoice::parse(value)
        .map_err(|e| ParseError(format!("invalid value for --executor: {e}")))
}

/// Parses a `--threads` value (a positive integer).
fn parse_threads(value: &str) -> Result<usize, ParseError> {
    match value.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(ParseError(format!(
            "invalid value {value:?} for --threads (expected an integer >= 1)"
        ))),
    }
}

/// Parses a comma-separated list of numbers for flags like `--ks 5,10,25`.
fn parse_number_list<T: std::str::FromStr>(flag: &str, value: &str) -> Result<Vec<T>, ParseError> {
    let items: Result<Vec<T>, ParseError> = value
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_number(flag, s))
        .collect();
    let items = items?;
    if items.is_empty() {
        return Err(ParseError(format!("{flag} needs at least one value")));
    }
    Ok(items)
}

fn parse_sweep(args: &[String]) -> Result<SweepArgs, ParseError> {
    let flags = collect_flags(args)?;
    let mut input: Option<String> = None;
    let mut family: Option<String> = None;
    let mut n: Option<usize> = None;
    let mut k_prime: usize = 25;
    let mut ks: Option<Vec<usize>> = None;
    let mut phis: Vec<f64> = vec![1.0, 4.0, 8.0];
    let mut builder = SweepBuilderChoice::Gonzalez;
    let mut coreset_size: usize = 0;
    let mut machines: usize = 50;
    let mut epsilon: f64 = 0.1;
    let mut seed: u64 = 0;
    let mut skip_columns: usize = 0;
    let mut precision = Precision::default();
    let mut kernel: Option<KernelChoice> = None;
    let mut assign: Option<AssignChoice> = None;
    let mut executor: Option<ExecutorChoice> = None;
    let mut threads: Option<usize> = None;
    let mut baseline = true;
    let mut faults = FaultArgs::default();
    for (flag, value) in &flags {
        if faults.consume(flag, value)? {
            continue;
        }
        match flag.as_str() {
            "--input" => input = Some(value.clone()),
            "--family" => family = Some(value.clone()),
            "--n" => n = Some(parse_number(flag, value)?),
            "--k-prime" => k_prime = parse_number(flag, value)?,
            "--ks" => ks = Some(parse_number_list(flag, value)?),
            "--phis" => phis = parse_number_list(flag, value)?,
            "--builder" => {
                builder = SweepBuilderChoice::parse(value).ok_or_else(|| {
                    ParseError(format!(
                        "invalid value {value:?} for --builder (expected gonzalez or eim)"
                    ))
                })?
            }
            "--coreset-size" => coreset_size = parse_number(flag, value)?,
            "--machines" => machines = parse_number(flag, value)?,
            "--epsilon" => epsilon = parse_number(flag, value)?,
            "--seed" => seed = parse_number(flag, value)?,
            "--skip-columns" => skip_columns = parse_number(flag, value)?,
            "--precision" => {
                precision = Precision::parse(value).ok_or_else(|| {
                    ParseError(format!(
                        "invalid value {value:?} for --precision (expected f32 or f64)"
                    ))
                })?
            }
            "--kernel" => kernel = Some(parse_kernel(value)?),
            "--assign" => assign = Some(parse_assign(value)?),
            "--executor" => executor = Some(parse_executor(value)?),
            "--threads" => threads = Some(parse_threads(value)?),
            "--baseline" => {
                baseline = match value.to_ascii_lowercase().as_str() {
                    "on" | "true" | "yes" => true,
                    "off" | "false" | "no" => false,
                    other => {
                        return Err(ParseError(format!(
                            "invalid value {other:?} for --baseline (expected on or off)"
                        )))
                    }
                }
            }
            other => return Err(ParseError(format!("unknown flag {other:?} for sweep"))),
        }
    }
    faults.validate()?;
    let source = match (input, family) {
        (Some(_), Some(_)) => {
            return Err(ParseError(
                "sweep takes either --input or --family, not both".into(),
            ))
        }
        (Some(path), None) => SweepSource::Csv { path, skip_columns },
        (None, Some(fam)) => {
            let n = n.ok_or_else(|| ParseError("sweep --family requires --n".into()))?;
            SweepSource::Generated(parse_family_spec(&fam, n, k_prime)?)
        }
        (None, None) => {
            return Err(ParseError(
                "sweep requires a point source: --input FILE.csv or --family ... --n N".into(),
            ))
        }
    };
    Ok(SweepArgs {
        source,
        ks: ks.ok_or_else(|| ParseError("sweep requires --ks (e.g. --ks 5,10,25)".into()))?,
        phis,
        builder,
        coreset_size,
        machines,
        epsilon,
        seed,
        precision,
        kernel,
        assign,
        executor,
        threads,
        baseline,
        faults,
    })
}

/// Parses a generated-workload family shared by `sweep` and `ingest`.
fn parse_family_spec(fam: &str, n: usize, k_prime: usize) -> Result<DatasetSpec, ParseError> {
    match fam.to_ascii_lowercase().as_str() {
        "unif" => Ok(DatasetSpec::Unif { n }),
        "gau" => Ok(DatasetSpec::Gau { n, k_prime }),
        "unb" => Ok(DatasetSpec::Unb { n, k_prime }),
        "poker" => Ok(DatasetSpec::PokerHand { n }),
        "kdd" => Ok(DatasetSpec::KddCup { n }),
        other => Err(ParseError(format!("unknown workload family {other:?}"))),
    }
}

fn parse_ingest(args: &[String]) -> Result<IngestArgs, ParseError> {
    let flags = collect_flags(args)?;
    let mut family: Option<String> = None;
    let mut n: Option<usize> = None;
    let mut k_prime: usize = 25;
    let mut seed: u64 = 0;
    let mut batches: Option<usize> = None;
    let mut coreset_size: usize = 32;
    let mut budget: Option<usize> = None;
    let mut machines: usize = 10;
    let mut k: Option<usize> = None;
    let mut checkpoint: Option<String> = None;
    let mut precision = Precision::default();
    let mut kernel: Option<KernelChoice> = None;
    let mut assign: Option<AssignChoice> = None;
    let mut executor: Option<ExecutorChoice> = None;
    let mut threads: Option<usize> = None;
    let mut faults = FaultArgs::default();
    let mut kill_after_batch: Option<usize> = None;
    let mut kill_stage: Option<KillStage> = None;
    let mut queries: Vec<Vec<f64>> = Vec::new();
    let mut report: Option<String> = None;
    for (flag, value) in &flags {
        if faults.consume(flag, value)? {
            continue;
        }
        match flag.as_str() {
            "--family" => family = Some(value.clone()),
            "--n" => n = Some(parse_number(flag, value)?),
            "--k-prime" => k_prime = parse_number(flag, value)?,
            "--seed" => seed = parse_number(flag, value)?,
            "--batches" => batches = Some(parse_number(flag, value)?),
            "--coreset-size" => coreset_size = parse_number(flag, value)?,
            "--budget" => budget = Some(parse_number(flag, value)?),
            "--machines" => machines = parse_number(flag, value)?,
            "--k" => k = Some(parse_number(flag, value)?),
            "--checkpoint" => checkpoint = Some(value.clone()),
            "--precision" => {
                precision = Precision::parse(value).ok_or_else(|| {
                    ParseError(format!(
                        "invalid value {value:?} for --precision (expected f32 or f64)"
                    ))
                })?
            }
            "--kernel" => kernel = Some(parse_kernel(value)?),
            "--assign" => assign = Some(parse_assign(value)?),
            "--executor" => executor = Some(parse_executor(value)?),
            "--threads" => threads = Some(parse_threads(value)?),
            "--kill-after-batch" => kill_after_batch = Some(parse_number(flag, value)?),
            "--kill-stage" => {
                kill_stage = Some(KillStage::parse(value).ok_or_else(|| {
                    ParseError(format!(
                        "invalid value {value:?} for --kill-stage (expected \
                         before-checkpoint, during-checkpoint or after-checkpoint)"
                    ))
                })?)
            }
            "--query" => queries.push(parse_number_list(flag, value)?),
            "--report" => report = Some(value.clone()),
            other => return Err(ParseError(format!("unknown flag {other:?} for ingest"))),
        }
    }
    faults.validate()?;
    let fam = family.ok_or_else(|| ParseError("ingest requires --family".into()))?;
    let n = n.ok_or_else(|| ParseError("ingest requires --n".into()))?;
    let spec = parse_family_spec(&fam, n, k_prime)?;
    let batches = batches.ok_or_else(|| ParseError("ingest requires --batches".into()))?;
    if coreset_size == 0 {
        return Err(ParseError(
            "--coreset-size needs at least one representative".into(),
        ));
    }
    // Default budget: four batch summaries' worth before re-compression.
    let budget = budget.unwrap_or(4 * coreset_size);
    if budget == 0 {
        return Err(ParseError(
            "--budget needs at least one representative".into(),
        ));
    }
    let kill = match (kill_after_batch, kill_stage) {
        (Some(batch), stage) => Some(KillPoint {
            batch,
            stage: stage.unwrap_or(KillStage::AfterCheckpoint),
        }),
        (None, Some(_)) => {
            return Err(ParseError(
                "--kill-stage needs --kill-after-batch to name the batch".into(),
            ))
        }
        (None, None) => None,
    };
    Ok(IngestArgs {
        spec,
        seed,
        batches,
        coreset_size,
        budget,
        machines,
        k: k.ok_or_else(|| ParseError("ingest requires --k".into()))?,
        checkpoint: checkpoint.ok_or_else(|| ParseError("ingest requires --checkpoint".into()))?,
        precision,
        kernel,
        assign,
        executor,
        threads,
        faults,
        kill,
        queries,
        report,
    })
}

fn parse_info(args: &[String]) -> Result<InfoArgs, ParseError> {
    let flags = collect_flags(args)?;
    let mut input: Option<String> = None;
    let mut skip_columns = 0;
    for (flag, value) in &flags {
        match flag.as_str() {
            "--input" => input = Some(value.clone()),
            "--skip-columns" => skip_columns = parse_number(flag, value)?,
            other => return Err(ParseError(format!("unknown flag {other:?} for info"))),
        }
    }
    Ok(InfoArgs {
        input: input.ok_or_else(|| ParseError("info requires --input".into()))?,
        skip_columns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn empty_and_help_map_to_help() {
        assert_eq!(parse(&[]).unwrap().command, Command::Help);
        assert_eq!(parse(&argv("help")).unwrap().command, Command::Help);
        assert_eq!(parse(&argv("--help")).unwrap().command, Command::Help);
    }

    #[test]
    fn unknown_subcommand_is_rejected() {
        let err = parse(&argv("frobnicate")).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn generate_parses_every_family() {
        let cli = parse(&argv(
            "generate gau --n 1000 --k-prime 7 --seed 3 --out /tmp/x.csv",
        ))
        .unwrap();
        match cli.command {
            Command::Generate(g) => {
                assert_eq!(
                    g.spec,
                    DatasetSpec::Gau {
                        n: 1000,
                        k_prime: 7
                    }
                );
                assert_eq!(g.seed, 3);
                assert_eq!(g.output, "/tmp/x.csv");
            }
            _ => panic!("expected generate"),
        }
        for fam in ["unif", "poker", "kdd", "unb"] {
            let cli = parse(&argv(&format!("generate {fam} --n 10 --out o.csv"))).unwrap();
            assert!(matches!(cli.command, Command::Generate(_)));
        }
    }

    #[test]
    fn generate_requires_n_and_out() {
        assert!(parse(&argv("generate unif --out x.csv")).is_err());
        assert!(parse(&argv("generate unif --n 10")).is_err());
        assert!(parse(&argv("generate martian --n 10 --out x.csv")).is_err());
    }

    #[test]
    fn generate_parses_the_adversarial_families() {
        let spec = |cmd: &str| match parse(&argv(cmd)).unwrap().command {
            Command::Generate(g) => g.spec,
            _ => panic!("expected generate"),
        };
        assert_eq!(
            spec("generate exp --n 100 --k-prime 6 --out o.csv"),
            DatasetSpec::Exp { n: 100, k_prime: 6 }
        );
        assert_eq!(
            spec("generate dup --n 100 --distinct 4 --out o.csv"),
            DatasetSpec::Dup {
                n: 100,
                distinct: 4
            }
        );
        // DUP defaults to 16 distinct locations.
        assert_eq!(
            spec("generate dup --n 100 --out o.csv"),
            DatasetSpec::Dup {
                n: 100,
                distinct: 16
            }
        );
        assert_eq!(
            spec("generate gau-hd --n 100 --k-prime 3 --dim 128 --out o.csv"),
            DatasetSpec::HighDim {
                n: 100,
                k_prime: 3,
                dim: 128
            }
        );
        let planted = DatasetSpec::PlantedOutliers {
            n: 500,
            k_prime: 5,
            outliers: 20,
        };
        assert_eq!(
            spec("generate gau+out --n 500 --k-prime 5 --outliers 20 --out o.csv"),
            planted.clone()
        );
        assert_eq!(
            spec("generate planted --n 500 --k-prime 5 --outliers 20 --out o.csv"),
            planted
        );
        // Planted outliers default to 1% of n (at least one).
        assert_eq!(
            spec("generate gau+out --n 500 --out o.csv"),
            DatasetSpec::PlantedOutliers {
                n: 500,
                k_prime: 25,
                outliers: 5
            }
        );
        assert_eq!(
            spec("generate planted --n 10 --out o.csv"),
            DatasetSpec::PlantedOutliers {
                n: 10,
                k_prime: 25,
                outliers: 1
            }
        );
        // --outliers is a planted-family knob only.
        let err = parse(&argv("generate gau --n 10 --outliers 2 --out o.csv")).unwrap_err();
        assert!(err.to_string().contains("--outliers"));
    }

    #[test]
    fn solve_parses_defaults_and_overrides() {
        let cli = parse(&argv("solve mrg --input pts.csv --k 10")).unwrap();
        match cli.command {
            Command::Solve(s) => {
                assert_eq!(s.algorithm, SolverChoice::Mrg);
                assert_eq!(s.k, 10);
                assert_eq!(s.machines, 50);
                assert_eq!(s.phi, 8.0);
                assert_eq!(s.epsilon, 0.1);
                assert_eq!(s.assignment_out, None);
                assert_eq!(s.precision, Precision::F64);
            }
            _ => panic!("expected solve"),
        }
        let cli = parse(&argv(
            "solve eim --input pts.csv --k 5 --machines 10 --phi 4 --epsilon 0.2 --seed 9 --skip-columns 1 --assign-out a.csv --precision f32",
        ))
        .unwrap();
        match cli.command {
            Command::Solve(s) => {
                assert_eq!(s.algorithm, SolverChoice::Eim);
                assert_eq!(s.machines, 10);
                assert_eq!(s.phi, 4.0);
                assert_eq!(s.epsilon, 0.2);
                assert_eq!(s.seed, 9);
                assert_eq!(s.skip_columns, 1);
                assert_eq!(s.assignment_out.as_deref(), Some("a.csv"));
                assert_eq!(s.precision, Precision::F32);
            }
            _ => panic!("expected solve"),
        }
    }

    #[test]
    fn solve_parses_the_outlier_budget() {
        // Defaults to 0 (no outlier report).
        let cli = parse(&argv("solve gon --input x.csv --k 3")).unwrap();
        match cli.command {
            Command::Solve(s) => assert_eq!(s.outliers, 0),
            _ => panic!("expected solve"),
        }
        let cli = parse(&argv("solve gon --input x.csv --k 3 --outliers 25")).unwrap();
        match cli.command {
            Command::Solve(s) => assert_eq!(s.outliers, 25),
            _ => panic!("expected solve"),
        }
        let err = parse(&argv("solve gon --input x.csv --k 3 --outliers few")).unwrap_err();
        assert!(err.to_string().contains("--outliers"));
    }

    #[test]
    fn solve_rejects_unknown_precision() {
        let err = parse(&argv("solve gon --input x.csv --k 2 --precision f16")).unwrap_err();
        assert!(err.to_string().contains("--precision"));
    }

    #[test]
    fn kernel_flag_parses_every_backend_and_rejects_unknown_names() {
        use kcenter_metric::KernelBackend;
        let cases = [
            ("auto", KernelChoice::Auto),
            ("scalar", KernelChoice::Fixed(KernelBackend::Scalar)),
            ("portable", KernelChoice::Fixed(KernelBackend::Portable)),
            ("AVX2", KernelChoice::Fixed(KernelBackend::Avx2)),
        ];
        for (name, want) in cases {
            let cli = parse(&argv(&format!(
                "solve gon --input x.csv --k 2 --kernel {name}"
            )))
            .unwrap();
            match cli.command {
                Command::Solve(s) => assert_eq!(s.kernel, Some(want), "{name}"),
                _ => panic!("expected solve"),
            }
        }
        // Absent flag defers to the environment variable.
        let cli = parse(&argv("solve gon --input x.csv --k 2")).unwrap();
        match cli.command {
            Command::Solve(s) => assert_eq!(s.kernel, None),
            _ => panic!("expected solve"),
        }
        // Unknown override is a named error.
        let err = parse(&argv("solve gon --input x.csv --k 2 --kernel warp9")).unwrap_err();
        assert!(err.to_string().contains("--kernel"));
        assert!(err.to_string().contains("warp9"));
        let err = parse(&argv("sweep --input a.csv --ks 2 --kernel turbo")).unwrap_err();
        assert!(err.to_string().contains("--kernel"));
        assert!(err.to_string().contains("turbo"));
    }

    #[test]
    fn assign_flag_parses_every_arm_and_rejects_unknown_names() {
        use kcenter_metric::AssignMode;
        let cases = [
            ("auto", AssignChoice::Auto),
            ("dense", AssignChoice::Fixed(AssignMode::Dense)),
            ("GRID", AssignChoice::Fixed(AssignMode::Grid)),
        ];
        for (name, want) in cases {
            let cli = parse(&argv(&format!(
                "solve gon --input x.csv --k 2 --assign {name}"
            )))
            .unwrap();
            match cli.command {
                Command::Solve(s) => assert_eq!(s.assign, Some(want), "{name}"),
                _ => panic!("expected solve"),
            }
        }
        // Absent flag defers to the environment variable.
        let cli = parse(&argv("solve gon --input x.csv --k 2")).unwrap();
        match cli.command {
            Command::Solve(s) => assert_eq!(s.assign, None),
            _ => panic!("expected solve"),
        }
        // Unknown override is a named error, on both subcommands.
        let err = parse(&argv("solve gon --input x.csv --k 2 --assign octree")).unwrap_err();
        assert!(err.to_string().contains("--assign"));
        assert!(err.to_string().contains("octree"));
        let err = parse(&argv("sweep --input a.csv --ks 2 --assign kdtree")).unwrap_err();
        assert!(err.to_string().contains("--assign"));
        assert!(err.to_string().contains("kdtree"));
        // The assignment-output flag is distinct from the arm pin.
        let cli = parse(&argv(
            "sweep --input a.csv --ks 2 --assign grid --kernel scalar",
        ))
        .unwrap();
        match cli.command {
            Command::Sweep(s) => assert_eq!(s.assign, Some(AssignChoice::Fixed(AssignMode::Grid))),
            _ => panic!("expected sweep"),
        }
    }

    #[test]
    fn executor_flags_parse_and_reject_unknown_values() {
        let cli = parse(&argv(
            "solve gon --input x.csv --k 2 --executor threads --threads 4",
        ))
        .unwrap();
        match cli.command {
            Command::Solve(s) => {
                assert_eq!(s.executor, Some(ExecutorChoice::Threads));
                assert_eq!(s.threads, Some(4));
            }
            _ => panic!("expected solve"),
        }
        let cli = parse(&argv("sweep --input a.csv --ks 2 --executor SIMULATED")).unwrap();
        match cli.command {
            Command::Sweep(s) => {
                assert_eq!(s.executor, Some(ExecutorChoice::Simulated));
                assert_eq!(s.threads, None);
            }
            _ => panic!("expected sweep"),
        }
        // Absent flags defer to the environment variables.
        let cli = parse(&argv("solve gon --input x.csv --k 2")).unwrap();
        match cli.command {
            Command::Solve(s) => {
                assert_eq!(s.executor, None);
                assert_eq!(s.threads, None);
            }
            _ => panic!("expected solve"),
        }
        // Unknown executor names and bad thread counts are named errors.
        let err = parse(&argv("solve gon --input x.csv --k 2 --executor gpu")).unwrap_err();
        assert!(err.to_string().contains("--executor"));
        assert!(err.to_string().contains("gpu"));
        let err = parse(&argv("solve gon --input x.csv --k 2 --threads 0")).unwrap_err();
        assert!(err.to_string().contains("--threads"));
        let err = parse(&argv("sweep --input a.csv --ks 2 --threads many")).unwrap_err();
        assert!(err.to_string().contains("--threads"));
    }

    #[test]
    fn sweep_kernel_flag_parses() {
        use kcenter_metric::KernelBackend;
        let cli = parse(&argv("sweep --input a.csv --ks 2 --kernel scalar")).unwrap();
        match cli.command {
            Command::Sweep(s) => {
                assert_eq!(s.kernel, Some(KernelChoice::Fixed(KernelBackend::Scalar)))
            }
            _ => panic!("expected sweep"),
        }
    }

    #[test]
    fn solve_rejects_missing_or_bad_arguments() {
        assert!(parse(&argv("solve mrg --k 5")).is_err());
        assert!(parse(&argv("solve mrg --input x.csv")).is_err());
        assert!(parse(&argv("solve quantum --input x.csv --k 5")).is_err());
        assert!(parse(&argv("solve mrg --input x.csv --k five")).is_err());
        assert!(parse(&argv("solve mrg --input x.csv --k 5 --bogus 1")).is_err());
        assert!(parse(&argv("solve mrg --input x.csv --k")).is_err());
    }

    #[test]
    fn solver_choice_aliases() {
        assert_eq!(SolverChoice::parse("GON"), Some(SolverChoice::Gon));
        assert_eq!(SolverChoice::parse("gonzalez"), Some(SolverChoice::Gon));
        assert_eq!(
            SolverChoice::parse("hochbaum-shmoys"),
            Some(SolverChoice::HochbaumShmoys)
        );
        assert_eq!(
            SolverChoice::parse("hs"),
            Some(SolverChoice::HochbaumShmoys)
        );
        assert_eq!(SolverChoice::parse("xyz"), None);
    }

    #[test]
    fn sweep_parses_defaults_and_overrides() {
        let cli = parse(&argv("sweep --input pts.csv --ks 5,10,25")).unwrap();
        match cli.command {
            Command::Sweep(s) => {
                assert_eq!(
                    s.source,
                    SweepSource::Csv {
                        path: "pts.csv".into(),
                        skip_columns: 0
                    }
                );
                assert_eq!(s.ks, vec![5, 10, 25]);
                assert_eq!(s.phis, vec![1.0, 4.0, 8.0]);
                assert_eq!(s.builder, SweepBuilderChoice::Gonzalez);
                assert_eq!(s.coreset_size, 0);
                assert_eq!(s.machines, 50);
                assert!(s.baseline);
                assert_eq!(s.precision, Precision::F64);
            }
            _ => panic!("expected sweep"),
        }
        let cli = parse(&argv(
            "sweep --family gau --n 1000 --k-prime 7 --ks 2,4 --phis 4,8 --builder eim \
             --coreset-size 64 --machines 8 --epsilon 0.13 --seed 3 --precision f32 --baseline off",
        ))
        .unwrap();
        match cli.command {
            Command::Sweep(s) => {
                assert_eq!(
                    s.source,
                    SweepSource::Generated(DatasetSpec::Gau {
                        n: 1000,
                        k_prime: 7
                    })
                );
                assert_eq!(s.ks, vec![2, 4]);
                assert_eq!(s.phis, vec![4.0, 8.0]);
                assert_eq!(s.builder, SweepBuilderChoice::Eim);
                assert_eq!(s.coreset_size, 64);
                assert_eq!(s.machines, 8);
                assert_eq!(s.epsilon, 0.13);
                assert_eq!(s.seed, 3);
                assert!(!s.baseline);
                assert_eq!(s.precision, Precision::F32);
            }
            _ => panic!("expected sweep"),
        }
    }

    #[test]
    fn sweep_rejects_bad_sources_and_flags() {
        // No source, both sources, family without n.
        assert!(parse(&argv("sweep --ks 2,3")).is_err());
        assert!(parse(&argv("sweep --input a.csv --family unif --n 10 --ks 2")).is_err());
        assert!(parse(&argv("sweep --family unif --ks 2")).is_err());
        assert!(parse(&argv("sweep --family martian --n 10 --ks 2")).is_err());
        // Missing or malformed grids.
        assert!(parse(&argv("sweep --input a.csv")).is_err());
        assert!(parse(&argv("sweep --input a.csv --ks two")).is_err());
        assert!(parse(&argv("sweep --input a.csv --ks ,")).is_err());
        // Bad enum values.
        assert!(parse(&argv("sweep --input a.csv --ks 2 --builder mrg")).is_err());
        assert!(parse(&argv("sweep --input a.csv --ks 2 --baseline maybe")).is_err());
        assert!(parse(&argv("sweep --input a.csv --ks 2 --precision f16")).is_err());
        assert!(parse(&argv("sweep --input a.csv --ks 2 --bogus 1")).is_err());
    }

    #[test]
    fn sweep_builder_aliases() {
        assert_eq!(
            SweepBuilderChoice::parse("GONZALEZ"),
            Some(SweepBuilderChoice::Gonzalez)
        );
        assert_eq!(
            SweepBuilderChoice::parse("gon"),
            Some(SweepBuilderChoice::Gonzalez)
        );
        assert_eq!(
            SweepBuilderChoice::parse("eim"),
            Some(SweepBuilderChoice::Eim)
        );
        assert_eq!(SweepBuilderChoice::parse("hs"), None);
    }

    #[test]
    fn info_parses() {
        let cli = parse(&argv("info --input pts.csv --skip-columns 2")).unwrap();
        assert_eq!(
            cli.command,
            Command::Info(InfoArgs {
                input: "pts.csv".into(),
                skip_columns: 2
            })
        );
        assert!(parse(&argv("info")).is_err());
    }

    #[test]
    fn fault_flags_parse_on_solve_and_sweep() {
        let cli = parse(&argv(
            "solve mrg --input x.csv --k 5 --fault-seed 42 --max-attempts 5 --degrade on",
        ))
        .unwrap();
        match cli.command {
            Command::Solve(s) => {
                assert_eq!(
                    s.faults,
                    FaultArgs {
                        plan_file: None,
                        fault_seed: Some(42),
                        max_attempts: Some(5),
                        degrade: true,
                    }
                );
                assert!(s.faults.is_active());
            }
            _ => panic!("expected solve"),
        }
        let cli = parse(&argv(
            "sweep --input a.csv --ks 2 --fault-plan plan.txt --degrade off",
        ))
        .unwrap();
        match cli.command {
            Command::Sweep(s) => {
                assert_eq!(s.faults.plan_file.as_deref(), Some("plan.txt"));
                assert_eq!(s.faults.fault_seed, None);
                assert!(!s.faults.degrade);
            }
            _ => panic!("expected sweep"),
        }
        // Fault-free by default.
        let cli = parse(&argv("solve gon --input x.csv --k 2")).unwrap();
        match cli.command {
            Command::Solve(s) => assert!(!s.faults.is_active()),
            _ => panic!("expected solve"),
        }
    }

    #[test]
    fn fault_flags_reject_inconsistent_combinations() {
        // Plan and seed are mutually exclusive.
        let err = parse(&argv(
            "solve mrg --input x.csv --k 5 --fault-plan p.txt --fault-seed 1",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("mutually exclusive"));
        // Policy flags need a fault source.
        assert!(parse(&argv("solve mrg --input x.csv --k 5 --max-attempts 4")).is_err());
        assert!(parse(&argv("sweep --input a.csv --ks 2 --degrade on")).is_err());
        // Zero attempts and bad degrade values are named errors.
        let err = parse(&argv(
            "solve mrg --input x.csv --k 5 --fault-seed 1 --max-attempts 0",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("--max-attempts"));
        let err = parse(&argv(
            "solve mrg --input x.csv --k 5 --fault-seed 1 --degrade maybe",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("--degrade"));
    }

    #[test]
    fn usage_mentions_all_subcommands() {
        for word in [
            "generate", "solve", "sweep", "ingest", "info", "gon", "mrg", "eim",
        ] {
            assert!(USAGE.contains(word), "usage text is missing {word}");
        }
    }

    #[test]
    fn ingest_parses_defaults_and_overrides() {
        let cli = parse(&argv(
            "ingest --family gau --n 2000 --batches 8 --k 5 --checkpoint state.ckpt",
        ))
        .unwrap();
        match cli.command {
            Command::Ingest(i) => {
                assert_eq!(
                    i.spec,
                    DatasetSpec::Gau {
                        n: 2000,
                        k_prime: 25
                    }
                );
                assert_eq!(i.seed, 0);
                assert_eq!(i.batches, 8);
                assert_eq!(i.coreset_size, 32);
                assert_eq!(i.budget, 128, "default budget is 4 batch summaries");
                assert_eq!(i.machines, 10);
                assert_eq!(i.k, 5);
                assert_eq!(i.checkpoint, "state.ckpt");
                assert_eq!(i.precision, Precision::F64);
                assert_eq!(i.kill, None);
                assert!(i.queries.is_empty());
                assert_eq!(i.report, None);
                assert!(!i.faults.is_active());
            }
            _ => panic!("expected ingest"),
        }
        let cli = parse(&argv(
            "ingest --family unif --n 500 --seed 9 --batches 4 --coreset-size 16 \
             --budget 48 --machines 5 --k 3 --checkpoint /tmp/s.ckpt --precision f32 \
             --fault-seed 7 --degrade on --kill-after-batch 2 --kill-stage during-checkpoint \
             --query 1.5,2.5 --query 0,0 --report out.json",
        ))
        .unwrap();
        match cli.command {
            Command::Ingest(i) => {
                assert_eq!(i.spec, DatasetSpec::Unif { n: 500 });
                assert_eq!(i.seed, 9);
                assert_eq!(i.batches, 4);
                assert_eq!(i.coreset_size, 16);
                assert_eq!(i.budget, 48);
                assert_eq!(i.machines, 5);
                assert_eq!(i.k, 3);
                assert_eq!(i.precision, Precision::F32);
                assert_eq!(i.faults.fault_seed, Some(7));
                assert!(i.faults.degrade);
                assert_eq!(
                    i.kill,
                    Some(KillPoint {
                        batch: 2,
                        stage: KillStage::DuringCheckpoint
                    })
                );
                assert_eq!(i.queries, vec![vec![1.5, 2.5], vec![0.0, 0.0]]);
                assert_eq!(i.report.as_deref(), Some("out.json"));
            }
            _ => panic!("expected ingest"),
        }
        // --kill-stage defaults to after-checkpoint when only the batch is
        // named.
        let cli = parse(&argv(
            "ingest --family gau --n 100 --batches 2 --k 2 --checkpoint c --kill-after-batch 1",
        ))
        .unwrap();
        match cli.command {
            Command::Ingest(i) => assert_eq!(
                i.kill,
                Some(KillPoint {
                    batch: 1,
                    stage: KillStage::AfterCheckpoint
                })
            ),
            _ => panic!("expected ingest"),
        }
    }

    #[test]
    fn ingest_rejects_missing_or_inconsistent_flags() {
        // Required flags.
        assert!(parse(&argv("ingest --n 100 --batches 2 --k 2 --checkpoint c")).is_err());
        assert!(parse(&argv(
            "ingest --family gau --batches 2 --k 2 --checkpoint c"
        ))
        .is_err());
        assert!(parse(&argv("ingest --family gau --n 100 --k 2 --checkpoint c")).is_err());
        assert!(parse(&argv(
            "ingest --family gau --n 100 --batches 2 --checkpoint c"
        ))
        .is_err());
        assert!(parse(&argv("ingest --family gau --n 100 --batches 2 --k 2")).is_err());
        // Kill stage without a batch, bad stage names, degenerate sizes.
        let err = parse(&argv(
            "ingest --family gau --n 100 --batches 2 --k 2 --checkpoint c \
             --kill-stage before-checkpoint",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("--kill-after-batch"));
        let err = parse(&argv(
            "ingest --family gau --n 100 --batches 2 --k 2 --checkpoint c \
             --kill-after-batch 0 --kill-stage sometime",
        ))
        .unwrap_err();
        assert!(err.to_string().contains("--kill-stage"));
        assert!(parse(&argv(
            "ingest --family gau --n 100 --batches 2 --k 2 --checkpoint c --coreset-size 0"
        ))
        .is_err());
        assert!(parse(&argv(
            "ingest --family gau --n 100 --batches 2 --k 2 --checkpoint c --budget 0"
        ))
        .is_err());
        assert!(parse(&argv(
            "ingest --family martian --n 100 --batches 2 --k 2 --checkpoint c"
        ))
        .is_err());
        // Fault flags validate exactly as on solve/sweep.
        assert!(parse(&argv(
            "ingest --family gau --n 100 --batches 2 --k 2 --checkpoint c --degrade on"
        ))
        .is_err());
    }

    #[test]
    fn kill_stage_names_round_trip() {
        for stage in [
            KillStage::BeforeCheckpoint,
            KillStage::DuringCheckpoint,
            KillStage::AfterCheckpoint,
        ] {
            assert_eq!(KillStage::parse(stage.name()), Some(stage));
        }
        assert_eq!(KillStage::parse("mid-flight"), None);
    }
}
