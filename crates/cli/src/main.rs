//! `kcenter` — the command-line front end.  All logic lives in the library
//! (`kcenter_cli`); this shim only wires argv, stdout, and exit codes.

use kcenter_cli::{args, commands};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cli = match args::parse(&argv) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("error: {e}\n\n{}", args::USAGE);
            std::process::exit(2);
        }
    };
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = commands::run(&cli, &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
