//! # kcenter — parallel k-center clustering
//!
//! Facade crate for the reproduction of *"Efficient Parallel Algorithms for
//! k-Center Clustering"* (McClintock & Wirth, ICPP 2016).  It re-exports the
//! four building blocks of the workspace so applications only need one
//! dependency:
//!
//! * [`metric`] — points, distances, metric spaces ([`kcenter_metric`]);
//! * [`data`] — synthetic and simulated-real workload generators
//!   ([`kcenter_data`]);
//! * [`mapreduce`] — the simulated MapReduce cluster with the paper's cost
//!   accounting ([`kcenter_mapreduce`]);
//! * [`algorithms`] — GON, MRG, EIM, Hochbaum–Shmoys and the evaluation
//!   helpers ([`kcenter_core`]).
//!
//! ## Quickstart
//!
//! ```
//! use kcenter::prelude::*;
//!
//! // 20,000 points in 25 Gaussian clusters (the paper's GAU family).
//! let points = GauGenerator::new(20_000, 25).generate(42);
//! let space = VecSpace::new(points);
//!
//! // Two-round MapReduce Gonzalez on 50 simulated machines.
//! let result = MrgConfig::new(25).run(&space).expect("MRG runs");
//! assert_eq!(result.solution.centers.len(), 25);
//! assert_eq!(result.mapreduce_rounds, 2);
//!
//! // Compare against the sequential 2-approximation baseline.
//! let baseline = GonzalezConfig::new(25).solve(&space).expect("GON runs");
//! assert!(result.solution.radius <= 2.0 * baseline.radius + 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use kcenter_core as algorithms;
pub use kcenter_data as data;
pub use kcenter_mapreduce as mapreduce;
pub use kcenter_metric as metric;

/// The most commonly used items from every sub-crate.
pub mod prelude {
    pub use kcenter_core::prelude::*;
    pub use kcenter_data::{
        DatasetSpec, DupGenerator, ExpGenerator, GauGenerator, KddCupSim, PlantedOutlierGenerator,
        PointGenerator, PokerHandSim, UnbGenerator, UnifGenerator,
    };
    pub use kcenter_mapreduce::{Cluster, ClusterConfig, Executor, JobStats, SimulatedCluster};
    pub use kcenter_metric::{
        AssignChoice, AssignMode, Distance, Euclidean, FlatPoints, KernelBackend, KernelChoice,
        MetricSpace, Point, PointId, Precision, Scalar, VecSpace,
    };
}
