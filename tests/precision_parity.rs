//! End-to-end precision parity: for every solver (GON, MRG, EIM), the
//! covering radius reported under `f32` storage must match the `f64` run to
//! within the documented input-rounding bound, and each precision must be
//! bit-for-bit deterministic given a seed.
//!
//! The documented bound (see `kcenter_metric::scalar` and the
//! `precision_properties` suite in `kcenter-core`): `f32` storage rounds
//! each coordinate once (relative `2^-24`), which perturbs any Euclidean
//! distance by at most `2 · 2^-24 · √dim · max|coord|`; all evaluation
//! arithmetic is `f64` at either precision.  The solvers additionally
//! *select* centers through `f32` comparison scans, so on instances with
//! near-tied farthest points the selected set could differ — the workloads
//! here are continuous random clouds where ties at `2^-24` relative scale
//! do not occur, which is also the regime the paper's experiments live in.
//!
//! Set `KCENTER_TEST_PRECISION=f32` (or `f64`) to restrict which storage
//! precisions the suite exercises — CI runs a dedicated `f32` leg.

use kcenter::prelude::*;
use kcenter_metric::Scalar;

/// The input-rounding tolerance for radii of a `dim`-dimensional workload
/// with coordinates up to `max_abs`, with safety margin.
fn tol(dim: usize, max_abs: f64) -> f64 {
    4.0 * f32::UNIT_ROUNDOFF * (dim as f64).sqrt() * (max_abs + 1.0)
}

fn precision_enabled(name: &str) -> bool {
    match std::env::var("KCENTER_TEST_PRECISION") {
        Ok(v) if !v.is_empty() && v != "both" => v.eq_ignore_ascii_case(name),
        _ => true,
    }
}

/// Runs all three solvers at storage precision `S` and returns the three
/// certified radii.
fn radii_at<S: Scalar>(spec: &DatasetSpec, seed: u64, k: usize) -> (f64, f64, f64) {
    let dataset = spec.build_at::<S>(seed);
    let space = &dataset.space;
    let gon = GonzalezConfig::new(k).solve(space).unwrap();
    let mrg = MrgConfig::new(k)
        .with_machines(10)
        .with_unchecked_capacity()
        .run(space)
        .unwrap();
    let eim = EimConfig::new(k)
        .with_machines(10)
        .with_seed(7)
        .run(space)
        .unwrap();
    (gon.radius, mrg.solution.radius, eim.solution.radius)
}

#[test]
fn solver_radii_match_across_precisions_within_input_rounding() {
    // GAU: 3-D, cube side 100; UNIF: 2-D, side 130.  Bounds scaled to each.
    let cases = [
        (
            DatasetSpec::Gau {
                n: 4_000,
                k_prime: 8,
            },
            3usize,
            150.0f64,
        ),
        (DatasetSpec::Unif { n: 4_000 }, 2usize, 150.0f64),
    ];
    if !(precision_enabled("f32") && precision_enabled("f64")) {
        // A single-precision run (CI matrix leg) cannot compare the two;
        // determinism is covered by the test below.
        return;
    }
    for (spec, dim, max_abs) in cases {
        let (g64, m64, e64) = radii_at::<f64>(&spec, 11, 6);
        let (g32, m32, e32) = radii_at::<f32>(&spec, 11, 6);
        let bound = tol(dim, max_abs);
        for (name, a, b) in [("GON", g64, g32), ("MRG", m64, m32), ("EIM", e64, e32)] {
            assert!(
                (a - b).abs() <= bound,
                "{name} on {}: f64 radius {a} vs f32 radius {b} drifted past the \
                 input-rounding bound {bound}",
                spec.describe()
            );
        }
    }
}

#[test]
fn each_precision_is_bit_for_bit_deterministic() {
    let spec = DatasetSpec::Gau {
        n: 3_000,
        k_prime: 6,
    };
    if precision_enabled("f64") {
        let a = radii_at::<f64>(&spec, 3, 5);
        let b = radii_at::<f64>(&spec, 3, 5);
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "GON f64 not deterministic");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "MRG f64 not deterministic");
        assert_eq!(a.2.to_bits(), b.2.to_bits(), "EIM f64 not deterministic");
    }
    if precision_enabled("f32") {
        let a = radii_at::<f32>(&spec, 3, 5);
        let b = radii_at::<f32>(&spec, 3, 5);
        assert_eq!(a.0.to_bits(), b.0.to_bits(), "GON f32 not deterministic");
        assert_eq!(a.1.to_bits(), b.1.to_bits(), "MRG f32 not deterministic");
        assert_eq!(a.2.to_bits(), b.2.to_bits(), "EIM f32 not deterministic");
    }
}

#[test]
fn parallel_scan_is_bit_identical_at_f32() {
    if !precision_enabled("f32") {
        return;
    }
    // Above the parallel cutoff, the chunked f32 scans must agree with the
    // sequential ones exactly (the determinism contract of the kernels).
    let dataset = DatasetSpec::Unif { n: 40_000 }.build_at::<f32>(5);
    let seq = GonzalezConfig::new(8).solve(&dataset.space).unwrap();
    let par = GonzalezConfig::new(8)
        .with_parallel_scan(true)
        .solve(&dataset.space)
        .unwrap();
    assert_eq!(seq.centers, par.centers);
    assert_eq!(seq.radius.to_bits(), par.radius.to_bits());
}

/// Heavy f32-only sweep, excluded from the default `cargo test` run and
/// executed by CI's dedicated f32 leg (`--include-ignored` with
/// `KCENTER_TEST_PRECISION=f32`): every workload family through every
/// solver at f32 storage, at a size that crosses the parallel-kernel
/// cutoff, asserting the certified radius actually covers the store and
/// that the parallel scan stays bit-identical.
#[test]
#[ignore = "f32 stress sweep; run by the CI f32 leg via --include-ignored"]
fn f32_stress_every_family_and_solver_above_par_cutoff() {
    if !precision_enabled("f32") {
        return;
    }
    use kcenter::algorithms::evaluate::covered_within;
    let specs = [
        DatasetSpec::Unif { n: 40_000 },
        DatasetSpec::Gau {
            n: 40_000,
            k_prime: 8,
        },
        DatasetSpec::Unb {
            n: 40_000,
            k_prime: 8,
        },
        DatasetSpec::PokerHand { n: 40_000 },
        DatasetSpec::KddCup { n: 40_000 },
    ];
    for spec in specs {
        let dataset = spec.build_at::<f32>(21);
        let space = &dataset.space;
        let gon = GonzalezConfig::new(8).solve(space).unwrap();
        let gon_par = GonzalezConfig::new(8)
            .with_parallel_scan(true)
            .solve(space)
            .unwrap();
        assert_eq!(gon.centers, gon_par.centers, "{}", spec.describe());
        assert_eq!(
            gon.radius.to_bits(),
            gon_par.radius.to_bits(),
            "{}",
            spec.describe()
        );
        let mrg = MrgConfig::new(8)
            .with_machines(10)
            .with_unchecked_capacity()
            .run(space)
            .unwrap();
        let eim = EimConfig::new(8)
            .with_machines(10)
            .with_seed(13)
            .run(space)
            .unwrap();
        for (name, centers, radius) in [
            ("GON", &gon.centers, gon.radius),
            ("MRG", &mrg.solution.centers, mrg.solution.radius),
            ("EIM", &eim.solution.centers, eim.solution.radius),
        ] {
            // The certified f64 radius must really cover the f32 store
            // (relative slack for the final sqrt/square round-trip only).
            assert!(
                covered_within(space, centers, radius * (1.0 + 1e-12) + 1e-12),
                "{name} on {}: certified radius {radius} does not cover",
                spec.describe()
            );
        }
    }
}

#[test]
fn f32_generation_rounds_the_f64_stream_at_emission() {
    // Same seed, both precisions: every f32 coordinate must be exactly the
    // rounding of the corresponding f64 coordinate (no separate RNG path,
    // no double rounding).
    for spec in [
        DatasetSpec::Unif { n: 500 },
        DatasetSpec::Gau { n: 500, k_prime: 4 },
        DatasetSpec::PokerHand { n: 200 },
        DatasetSpec::KddCup { n: 200 },
    ] {
        let wide = spec.generate_flat_at::<f64>(9);
        let narrow = spec.generate_flat_at::<f32>(9);
        assert_eq!(wide.len(), narrow.len(), "{}", spec.describe());
        assert_eq!(wide.dim(), narrow.dim(), "{}", spec.describe());
        for (w, n) in wide.coords().iter().zip(narrow.coords()) {
            assert_eq!(*w as f32, *n, "{}", spec.describe());
        }
    }
}
