//! Cross-crate integration tests: generators → metric space → parallel
//! algorithms → evaluation, on every workload family of the paper.

use kcenter::algorithms::evaluate::{assign, cluster_sizes, covering_radius};
use kcenter::prelude::*;

fn families() -> Vec<(&'static str, VecSpace)> {
    vec![
        ("UNIF", VecSpace::new(UnifGenerator::new(3_000).generate(1))),
        (
            "GAU",
            VecSpace::new(GauGenerator::new(3_000, 10).generate(1)),
        ),
        (
            "UNB",
            VecSpace::new(UnbGenerator::new(3_000, 10).generate(1)),
        ),
        (
            "POKER",
            VecSpace::new(PokerHandSim::with_rows(2_000).generate(1)),
        ),
        (
            "KDD",
            VecSpace::new(KddCupSim::with_rows(2_000).generate(1)),
        ),
    ]
}

#[test]
fn all_algorithms_run_on_every_workload_family() {
    for (family, space) in families() {
        let k = 8;
        let gon = GonzalezConfig::new(k).solve(&space).unwrap();
        let mrg = MrgConfig::new(k)
            .with_machines(10)
            .with_unchecked_capacity()
            .run(&space)
            .unwrap();
        let eim = EimConfig::new(k)
            .with_machines(10)
            .with_seed(2)
            .run(&space)
            .unwrap();

        for (name, radius) in [
            ("GON", gon.radius),
            ("MRG", mrg.solution.radius),
            ("EIM", eim.solution.radius),
        ] {
            assert!(
                radius.is_finite() && radius >= 0.0,
                "{family}/{name} produced a bad radius"
            );
        }
        // All three are constant-factor approximations of the same optimum:
        // MRG <= 4*OPT <= 4*GON and GON <= 2*OPT <= 2*MRG, so the ratio
        // between any two values is bounded by 8 (10 for EIM, loosely).
        let values = [gon.radius, mrg.solution.radius, eim.solution.radius];
        let max = values.iter().copied().fold(0.0f64, f64::max);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        assert!(
            max / min.max(1e-12) <= 10.0,
            "{family}: algorithm values diverge implausibly (min {min}, max {max})"
        );
    }
}

#[test]
fn mrg_two_round_structure_on_paper_sized_machine_count() {
    let space = VecSpace::new(GauGenerator::new(20_000, 25).generate(3));
    let result = MrgConfig::new(25).run(&space).unwrap();
    assert_eq!(
        result.mapreduce_rounds, 2,
        "paper-default capacity must give the two-round case"
    );
    assert_eq!(result.approximation_factor, 4.0);
    assert_eq!(result.solution.centers.len(), 25);
    // Round accounting: first round processes all n points over 50
    // machines, the final round processes k*m = 1250 centers on one machine.
    let rounds = result.stats.rounds();
    assert_eq!(rounds.len(), 2);
    assert_eq!(rounds[0].items_in, 20_000);
    assert_eq!(rounds[0].machines_used, 50);
    assert_eq!(rounds[1].items_in, 25 * 50);
    assert_eq!(rounds[1].machines_used, 1);
}

#[test]
fn eim_samples_on_large_instances_and_falls_back_on_small_ones() {
    // Small n, large k: threshold exceeds n, no sampling.
    let small = VecSpace::new(UnifGenerator::new(2_000).generate(4));
    let fallback = EimConfig::new(100).with_machines(10).run(&small).unwrap();
    assert!(fallback.fell_back_to_sequential);
    assert_eq!(fallback.mapreduce_rounds, 1);

    // Large n, small k (with epsilon near 1/ln n): sampling kicks in.
    let large = VecSpace::new(UnifGenerator::new(20_000).generate(4));
    let sampled = EimConfig::new(2)
        .with_machines(10)
        .with_epsilon(0.11)
        .with_seed(5)
        .run(&large)
        .unwrap();
    assert!(!sampled.fell_back_to_sequential);
    assert!(sampled.iterations >= 1);
    assert!(sampled.sample_size < 20_000);
    assert_eq!(sampled.mapreduce_rounds, 3 * sampled.iterations + 1);
}

#[test]
fn assignments_cover_every_point_within_the_reported_radius() {
    let space = VecSpace::new(UnbGenerator::new(5_000, 8).generate(6));
    let result = MrgConfig::new(8)
        .with_machines(16)
        .with_unchecked_capacity()
        .run(&space)
        .unwrap();
    let assignment = assign(&space, &result.solution.centers);
    assert_eq!(assignment.len(), 5_000);
    let sizes = cluster_sizes(&assignment, result.solution.centers.len());
    assert_eq!(sizes.iter().sum::<usize>(), 5_000);
    for (point, &center_idx) in assignment.iter().enumerate() {
        let d = space.distance(point, result.solution.centers[center_idx]);
        assert!(d <= result.solution.radius + 1e-9);
    }
    // The reported radius is exactly the covering radius of the centers.
    let radius = covering_radius(&space, &result.solution.centers);
    assert!((radius - result.solution.radius).abs() < 1e-9);
}

#[test]
fn results_are_deterministic_given_seeds() {
    let spec = DatasetSpec::Gau {
        n: 4_000,
        k_prime: 5,
    };
    let a = VecSpace::new(spec.generate(7));
    let b = VecSpace::new(spec.generate(7));
    let mrg_a = MrgConfig::new(5)
        .with_machines(10)
        .with_unchecked_capacity()
        .run(&a)
        .unwrap();
    let mrg_b = MrgConfig::new(5)
        .with_machines(10)
        .with_unchecked_capacity()
        .run(&b)
        .unwrap();
    assert_eq!(mrg_a.solution, mrg_b.solution);

    let eim_a = EimConfig::new(5)
        .with_machines(10)
        .with_seed(11)
        .run(&a)
        .unwrap();
    let eim_b = EimConfig::new(5)
        .with_machines(10)
        .with_seed(11)
        .run(&b)
        .unwrap();
    assert_eq!(eim_a.solution, eim_b.solution);
    assert_eq!(eim_a.sample_size, eim_b.sample_size);
}

#[test]
fn hochbaum_shmoys_final_round_is_interchangeable_with_gonzalez() {
    let space = VecSpace::new(GauGenerator::new(4_000, 10).generate(8));
    let gon_final = MrgConfig::new(10)
        .with_machines(10)
        .with_unchecked_capacity()
        .run(&space)
        .unwrap();
    let hs_final = MrgConfig::new(10)
        .with_machines(10)
        .with_unchecked_capacity()
        .with_solver(SequentialSolver::HochbaumShmoys)
        .run(&space)
        .unwrap();
    // Both sub-procedures are 2-approximations on the sample, so the final
    // values are within a small constant factor of each other.
    let ratio = gon_final.solution.radius / hs_final.solution.radius.max(1e-12);
    assert!(ratio < 4.0 && ratio > 0.25, "implausible ratio {ratio}");
}

#[test]
fn capacity_errors_surface_instead_of_being_silently_ignored() {
    let space = VecSpace::new(UnifGenerator::new(10_000).generate(9));
    // 5 machines x 100 capacity cannot even hold the input.
    let err = MrgConfig::new(5)
        .with_machines(5)
        .with_capacity(100)
        .run(&space)
        .unwrap_err();
    assert!(matches!(err, KCenterError::MapReduce(_)));
}
