//! Kernel-dispatch parity: `KCENTER_KERNEL=scalar` vs `auto` (and every
//! other available backend) must produce **bit-identical certified radii**
//! per `(seed, precision)` across GON, MRG and EIM on small inputs, and the
//! dispatch layer must reject unknown or unavailable kernels with named
//! errors rather than panicking inside a scan.
//!
//! The instances use integer coordinates in a range where every squared
//! distance — in any accumulation order, fused or not — is exactly
//! representable at both `f32` and `f64`, so all backends compute the exact
//! same comparison-space values, select the exact same centers (lowest-index
//! tie-breaking is shared by contract), and hand the same center sets to the
//! fixed scalar `wide_cmp_*` certification scans.  In the default build
//! every arm resolves to `scalar` and the test is a tautology; the CI
//! `--features simd` legs run it with the portable and AVX2 arms live.
//!
//! Backend switches go through a process-global dispatch table, so this
//! binary serialises them behind a mutex (each integration-test file is its
//! own process, so other test binaries are unaffected).

use kcenter::prelude::*;
use kcenter_metric::kernel::simd;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serialises backend overrides within this test binary.
fn dispatch_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A deterministic integer-grid cloud at dimension 16 (above both SIMD lane
/// widths, so the width-pinned kernels actually engage): coordinates in
/// [-16, 16], squared distances bounded by 16·32² = 16384 — exact at `f32`.
fn grid_cloud(n: usize, seed: u64) -> Vec<f64> {
    (0..n * 16)
        .map(|i| {
            let v = (i as u64)
                .wrapping_add(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15))
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            ((v >> 33) % 33) as f64 - 16.0
        })
        .collect()
}

fn space_at<S: Scalar>(coords: &[f64], dim: usize) -> VecSpace<Euclidean, S> {
    let narrowed: Vec<S> = coords.iter().map(|&c| S::from_f64(c)).collect();
    VecSpace::from_flat(FlatPoints::from_coords(narrowed, dim).expect("valid grid"))
}

/// Runs all three solvers at storage precision `S` under the **currently
/// active** backend and returns `(gon, mrg, eim)` certified radii plus the
/// selected GON centers.
fn radii_at<S: Scalar>(coords: &[f64], k: usize) -> (f64, f64, f64, Vec<PointId>) {
    let space = space_at::<S>(coords, 16);
    let gon = GonzalezConfig::new(k).solve(&space).expect("GON");
    let mrg = MrgConfig::new(k)
        .with_machines(8)
        .with_unchecked_capacity()
        .run(&space)
        .expect("MRG");
    let eim = EimConfig::new(k)
        .with_machines(8)
        .with_epsilon(0.13)
        .with_seed(11)
        .run(&space)
        .expect("EIM");
    (
        gon.radius,
        mrg.solution.radius,
        eim.solution.radius,
        gon.centers,
    )
}

#[test]
fn certified_radii_are_bit_identical_across_dispatch_arms() {
    let _guard = dispatch_lock();
    let prior = simd::active();
    let coords = grid_cloud(2_500, 3);

    // The scalar arm is the reference (`KCENTER_KERNEL=scalar`).
    simd::set_active(KernelBackend::Scalar).unwrap();
    let ref64 = radii_at::<f64>(&coords, 6);
    let ref32 = radii_at::<f32>(&coords, 6);

    // Every other available arm — including whatever `auto` resolves to —
    // must reproduce the same certified radii and the same GON centers.
    let auto = KernelChoice::Auto.resolve().unwrap();
    let mut arms = simd::available_backends();
    if !arms.contains(&auto) {
        arms.push(auto);
    }
    for arm in arms {
        simd::set_active(arm).unwrap();
        let got64 = radii_at::<f64>(&coords, 6);
        let got32 = radii_at::<f32>(&coords, 6);
        assert_eq!(got64, ref64, "f64 arm {arm} diverged from scalar");
        assert_eq!(got32, ref32, "f32 arm {arm} diverged from scalar");
    }

    simd::set_active(prior).unwrap();
}

#[test]
fn coreset_builds_are_bit_identical_across_dispatch_arms() {
    let _guard = dispatch_lock();
    let prior = simd::active();
    let coords = grid_cloud(2_000, 9);

    simd::set_active(KernelBackend::Scalar).unwrap();
    let reference = {
        let space = space_at::<f32>(&coords, 16);
        let c = GonzalezCoresetConfig::new(64)
            .with_machines(4)
            .build(&space)
            .unwrap();
        (
            c.source_ids().to_vec(),
            c.weights().to_vec(),
            c.construction_radius(),
        )
    };
    for arm in simd::available_backends() {
        simd::set_active(arm).unwrap();
        let space = space_at::<f32>(&coords, 16);
        let c = GonzalezCoresetConfig::new(64)
            .with_machines(4)
            .build(&space)
            .unwrap();
        assert_eq!(c.source_ids(), &reference.0[..], "{arm}");
        assert_eq!(c.weights(), &reference.1[..], "{arm}");
        assert_eq!(c.construction_radius(), reference.2, "{arm}");
    }

    simd::set_active(prior).unwrap();
}

#[test]
fn unknown_kernel_names_are_named_errors() {
    let err = KernelChoice::parse("frobnicate").unwrap_err();
    assert!(err.to_string().contains("frobnicate"));
    assert!(err.to_string().contains("scalar"));
    // Known names parse case-insensitively and resolve when available.
    assert_eq!(
        KernelChoice::parse("SCALAR").unwrap().resolve().unwrap(),
        KernelBackend::Scalar
    );
    assert_eq!(
        KernelChoice::parse("portable").unwrap().resolve().unwrap(),
        KernelBackend::Portable
    );
    // avx2 either resolves (simd build on a supporting CPU) or is the
    // named unavailability error — never a panic.
    match KernelChoice::parse("avx2").unwrap().resolve() {
        Ok(k) => assert_eq!(k, KernelBackend::Avx2),
        Err(e) => assert!(e.to_string().contains("avx2")),
    }
}

#[test]
fn environment_parsing_matches_flag_parsing() {
    // `from_env` reads KCENTER_KERNEL; when unset it must mean `auto`.
    // (The suite cannot mutate the process environment safely across
    // threads, so this asserts on whatever the harness environment is:
    // either the variable is unset/valid — `from_env` succeeds and resolves
    // — or the driver set it to something invalid and the error names it.)
    match KernelChoice::from_env() {
        Ok(choice) => {
            let backend = choice.resolve().expect("env-selected backend resolves");
            assert!(simd::available_backends().contains(&backend));
        }
        Err(e) => assert!(e.to_string().contains("unknown kernel")),
    }
}
