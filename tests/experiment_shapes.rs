//! Shape tests for the paper's headline experimental findings, run at
//! reduced scale: who wins, by roughly what factor, and where the regime
//! changes fall.  Absolute numbers differ from the paper (different
//! hardware, different language, scaled-down inputs), but these qualitative
//! relations are what the evaluation section is about and they must hold.

use kcenter::prelude::*;
use std::time::Instant;

/// Workload sizes are kept modest so the whole file runs in seconds even in
/// debug builds; the full-scale experiments live in the bench crate.
const N: usize = 30_000;

fn gau_space(seed: u64) -> VecSpace {
    VecSpace::new(GauGenerator::new(N, 25).generate(seed))
}

#[test]
fn mrg_beats_the_sequential_baseline_under_the_paper_runtime_metric() {
    // Paper, Section 8: "Overall MRG is faster than the alternative
    // procedures - often by orders of magnitude".  At this reduced scale we
    // conservatively require a 3x win for the simulated (max machine time
    // per round) metric.
    let space = gau_space(1);
    let k = 25;

    let start = Instant::now();
    let _gon = GonzalezConfig::new(k).solve(&space).unwrap();
    let gon_seconds = start.elapsed().as_secs_f64();

    let mrg = MrgConfig::new(k).run(&space).unwrap();
    let mrg_seconds = mrg.stats.simulated_time().as_secs_f64();

    assert!(
        mrg_seconds * 3.0 < gon_seconds,
        "MRG simulated time {mrg_seconds:.4}s is not clearly below GON {gon_seconds:.4}s"
    );
}

#[test]
fn eim_is_slower_than_mrg_despite_being_parallel() {
    // Paper, Section 8: "EIM running slower than the sequential algorithm
    // despite being parallelized".  We assert the weaker, more robust half
    // of that finding: EIM is slower than MRG under the simulated metric.
    let space = VecSpace::new(UnifGenerator::new(N).generate(2));
    let k = 2; // small k so the sampling loop actually runs at this scale
    let eim = EimConfig::new(k)
        .with_epsilon(0.11)
        .with_seed(3)
        .run(&space)
        .unwrap();
    assert!(
        !eim.fell_back_to_sequential,
        "test needs the sampling loop to run"
    );
    let mrg = MrgConfig::new(k).run(&space).unwrap();
    let eim_seconds = eim.stats.simulated_time().as_secs_f64();
    let mrg_seconds = mrg.stats.simulated_time().as_secs_f64();
    assert!(
        eim_seconds > mrg_seconds,
        "EIM ({eim_seconds:.4}s) should be slower than MRG ({mrg_seconds:.4}s)"
    );
}

#[test]
fn solution_values_of_all_three_algorithms_are_comparable() {
    // Paper, Section 8.1: "the solutions for the parallelized algorithms
    // are comparable to those of the baseline, GON".  We require every pair
    // to be within 60% of each other — far tighter than the worst-case
    // factors (4 and 10) but looser than the few-percent differences the
    // paper reports.
    let space = gau_space(4);
    for k in [5usize, 25] {
        let gon = GonzalezConfig::new(k).solve(&space).unwrap().radius;
        let mrg = MrgConfig::new(k).run(&space).unwrap().solution.radius;
        let eim = EimConfig::new(k)
            .with_seed(5)
            .run(&space)
            .unwrap()
            .solution
            .radius;
        for (name, v) in [("MRG", mrg), ("EIM", eim)] {
            assert!(
                v <= 1.6 * gon && v >= 0.4 * gon,
                "{name} value {v:.3} is not comparable to GON {gon:.3} at k={k}"
            );
        }
    }
}

#[test]
fn objective_collapses_once_k_reaches_the_planted_cluster_count() {
    // Tables 2 and 4: for GAU/UNB with k' = 25 the objective drops by
    // orders of magnitude between k = 10 and k = 25 (from ~40 to ~1).
    let space = gau_space(6);
    let at_10 = MrgConfig::new(10).run(&space).unwrap().solution.radius;
    let at_25 = MrgConfig::new(25).run(&space).unwrap().solution.radius;
    assert!(
        at_25 * 3.0 < at_10,
        "objective should collapse at k = k' (k=10: {at_10:.3}, k=25: {at_25:.3})"
    );
}

#[test]
fn eim_degenerates_to_gon_when_k_is_large_relative_to_n() {
    // Figures 3b / 4b: "if k is large enough, the condition is never met
    // and no sampling occurs, so GON is run on the entire data set".
    let space = VecSpace::new(GauGenerator::new(5_000, 50).generate(7));
    let eim = EimConfig::new(100).with_seed(8).run(&space).unwrap();
    assert!(eim.fell_back_to_sequential);
    let gon = GonzalezConfig::new(100).solve(&space).unwrap();
    assert_eq!(eim.solution.radius, gon.radius);
}

#[test]
fn lowering_phi_reduces_eim_work() {
    // Table 7: runtimes drop substantially as phi decreases.  Timing at
    // this scale is noisy, so we assert on the deterministic proxy the
    // runtime is made of: the total number of items processed by reducers.
    let space = VecSpace::new(GauGenerator::new(N, 25).generate(9));
    let run = |phi: f64| {
        EimConfig::new(2)
            .with_epsilon(0.11)
            .with_phi(phi)
            .with_seed(10)
            .run(&space)
            .unwrap()
    };
    let low = run(1.0);
    let high = run(8.0);
    assert!(!high.fell_back_to_sequential);
    assert!(
        low.stats.total_items_in() <= high.stats.total_items_in(),
        "phi=1 processed more items ({}) than phi=8 ({})",
        low.stats.total_items_in(),
        high.stats.total_items_in()
    );
}

#[test]
fn grid_auto_falls_back_to_dense_in_high_dimension() {
    // The spatial-grid crossover only pays off while cells still prune:
    // in the adversarial d ∈ {64, 128} regime every point lands in its
    // own cell and bucketing is pure overhead, so `auto` must resolve to
    // the dense scan no matter how large the scan is.  (`auto_mode` is the
    // pure decision function behind `select_mode`; asserting on it keeps
    // this test immune to the process-global scan telemetry that parallel
    // tests in this binary are updating.)
    use kcenter::metric::grid::{auto_mode, AssignMode, ScanShape};
    for dim in [64, 128] {
        for (points, candidates) in [(30_000, 25), (1 << 20, 512)] {
            assert_eq!(
                auto_mode(ScanShape {
                    points,
                    candidates,
                    dim
                }),
                AssignMode::Dense,
                "d={dim} must stay dense (points={points}, candidates={candidates})"
            );
        }
    }
    // Contrast: the same scan in a bucketing-friendly dimension goes grid.
    assert_eq!(
        auto_mode(ScanShape {
            points: 30_000,
            candidates: 25,
            dim: 2
        }),
        AssignMode::Grid
    );
    // End to end, the high-dimensional workload solves under auto dispatch.
    let flat = GauGenerator::with_params(4_096, 8, 64, 100.0, 0.002).generate_flat_at::<f64>(12);
    let space: VecSpace = VecSpace::from_flat(flat);
    let sol = GonzalezConfig::new(8).solve(&space).unwrap();
    assert_eq!(sol.centers.len(), 8);
}

#[test]
fn dropping_planted_outliers_strictly_improves_the_certified_radius() {
    // The robust objective's shape claim: on GAU+OUT the full-space radius
    // is set by the planted far outliers, so certifying over the kept
    // n − z points must strictly shrink it — substantially, not by noise.
    let gen = PlantedOutlierGenerator::new(N, 25, N / 100);
    let space: VecSpace = VecSpace::from_flat(gen.generate_flat_at::<f64>(13));
    let sol = GonzalezConfig::new(25).solve(&space).unwrap();
    let eval = evaluate_with_outliers(&space, &sol.centers, N / 100);
    assert_eq!(eval.full_radius.to_bits(), sol.radius.to_bits());
    assert!(
        eval.radius < 0.9 * eval.full_radius,
        "dropping the planted z must clearly improve: kept {} vs full {}",
        eval.radius,
        eval.full_radius
    );
    // Monotone: half the budget still never hurts.
    let half = evaluate_with_outliers(&space, &sol.centers, N / 200);
    assert!(eval.radius <= half.radius && half.radius <= eval.full_radius);
}

#[test]
fn mrg_runtime_grows_roughly_linearly_in_n() {
    // Figure 4a: for fixed k, MRG's runtime is dominated by the k*n/m term,
    // so quadrupling n should increase the simulated time clearly, but far
    // less than quadratically.
    let small = VecSpace::new(UnifGenerator::new(10_000).generate(11));
    let large = VecSpace::new(UnifGenerator::new(40_000).generate(11));
    let t_small = MrgConfig::new(10)
        .run(&small)
        .unwrap()
        .stats
        .sequential_time()
        .as_secs_f64();
    let t_large = MrgConfig::new(10)
        .run(&large)
        .unwrap()
        .stats
        .sequential_time()
        .as_secs_f64();
    let ratio = t_large / t_small.max(1e-9);
    assert!(
        ratio > 1.5 && ratio < 16.0,
        "scaling n by 4 changed MRG total work by {ratio:.2}x, outside the plausible linear-ish band"
    );
}
